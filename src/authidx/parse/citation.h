#ifndef AUTHIDX_PARSE_CITATION_H_
#define AUTHIDX_PARSE_CITATION_H_

#include <string_view>

#include "authidx/common/result.h"
#include "authidx/model/record.h"

namespace authidx {

/// Parses a volume:page (year) citation as printed in the source index,
/// e.g. "95:691 (1993)". Tolerates surrounding whitespace and flexible
/// spacing before the parenthesis. Rejects anything else.
Result<Citation> ParseCitation(std::string_view text);

}  // namespace authidx

#endif  // AUTHIDX_PARSE_CITATION_H_
