#ifndef AUTHIDX_PARSE_BIBTEX_H_
#define AUTHIDX_PARSE_BIBTEX_H_

#include <string>
#include <string_view>
#include <vector>

#include "authidx/common/result.h"
#include "authidx/model/record.h"

namespace authidx {

/// A raw BibTeX entry: type, citation key, and field map.
struct BibTexEntry {
  std::string type;  // Lowercased: "article", "inproceedings", ...
  std::string key;
  std::vector<std::pair<std::string, std::string>> fields;  // Lower names.

  /// First value for `name`, or empty view if absent.
  std::string_view Field(std::string_view name) const;
};

/// Parses a BibTeX document into raw entries.
///
/// Supported syntax (the subset proceedings metadata actually uses):
///  * `@type{key, name = {value}, name = "value", name = 1993 }`
///  * nested braces inside values, `{}`-protected capitals left intact;
///  * `%` line comments outside entries and free text between entries
///    (both ignored), `@comment`/`@preamble` skipped;
///  * no `@string` macro expansion (NotSupported when referenced).
Result<std::vector<BibTexEntry>> ParseBibTex(std::string_view text);

/// Converts raw entries to catalog `Entry` records. Each author in the
/// `author` field ("A and B and C", either "Given Surname" or
/// "Surname, Given" form) yields one Entry with the others as coauthors
/// — exactly how a printed author index lists multi-author works.
/// Requires fields: author, title, year; volume and pages defaulted to 1
/// when absent (proceedings without volume numbers).
Result<std::vector<Entry>> BibTexToEntries(
    const std::vector<BibTexEntry>& bib_entries);

/// ParseBibTex + BibTexToEntries.
Result<std::vector<Entry>> ParseBibTexToEntries(std::string_view text);

}  // namespace authidx

#endif  // AUTHIDX_PARSE_BIBTEX_H_
