#ifndef AUTHIDX_PARSE_TSV_H_
#define AUTHIDX_PARSE_TSV_H_

#include <string>
#include <string_view>
#include <vector>

#include "authidx/common/result.h"
#include "authidx/model/record.h"

namespace authidx {

/// Tab-separated interchange format for index entries, one entry per
/// line:
///
///   <author index form>\t<title>\t<vol:page (year)>[\t<coauthor>;...]
///
/// This is the import/export format used by the examples and the
/// embedded sample corpus. Lines that are empty or start with '#' are
/// skipped.

/// Renders one entry as a TSV line (no trailing newline).
std::string EntryToTsvLine(const Entry& entry);

/// Parses one TSV line into an entry.
Result<Entry> ParseTsvLine(std::string_view line);

/// Parses a whole TSV document. On malformed lines the status carries
/// the 1-based line number. Skips blank and '#' comment lines.
Result<std::vector<Entry>> ParseTsv(std::string_view text);

/// Serializes entries, one TSV line each, with a trailing newline.
std::string EntriesToTsv(const std::vector<Entry>& entries);

}  // namespace authidx

#endif  // AUTHIDX_PARSE_TSV_H_
