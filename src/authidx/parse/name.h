#ifndef AUTHIDX_PARSE_NAME_H_
#define AUTHIDX_PARSE_NAME_H_

#include <string_view>

#include "authidx/common/result.h"
#include "authidx/model/record.h"

namespace authidx {

/// Parses an author name in index form as printed in the source text:
///
///   "Abdalla, Tarek F.*"            -> surname, given, student flag
///   "Arceneaux, Webster J., III"    -> generational suffix recognized
///   "Byrd, Hon. Robert C."          -> honorifics stay in `given`
///   "Adler, Mortimer J."
///   "Cox, Archibald"
///   "Minow, Martha"
///
/// Recognized suffixes: Jr, Sr, II, III, IV, V (with or without periods).
/// A trailing '*' anywhere after the last field sets student_material.
Result<AuthorName> ParseAuthorName(std::string_view text);

}  // namespace authidx

#endif  // AUTHIDX_PARSE_NAME_H_
