#ifndef AUTHIDX_MODEL_RECORD_H_
#define AUTHIDX_MODEL_RECORD_H_

#include <cstdint>
#include <string>
#include <vector>

#include "authidx/common/status.h"

namespace authidx {

/// Stable identifier of an indexed entry, assigned densely at ingest in
/// insertion order. Doubles as the document id in postings lists.
using EntryId = uint32_t;

/// Sentinel for "no entry".
inline constexpr EntryId kInvalidEntryId = UINT32_MAX;

/// A personal name as printed in an author index:
/// "Arceneaux, Webster J., III*" -> surname "Arceneaux",
/// given "Webster J.", suffix "III", student_material true.
struct AuthorName {
  std::string surname;
  std::string given;   // Given names/initials, may be empty.
  std::string suffix;  // "Jr.", "Sr.", "II"..."IV"; empty if none.
  /// The source text marks student-written material with an asterisk.
  bool student_material = false;

  /// Renders in index form: "Surname, Given, Suffix*".
  std::string ToIndexForm() const;

  /// Renders in reading form: "Given Surname, Suffix".
  std::string ToReadingForm() const;

  /// Key used for grouping and collation: "surname, given, suffix"
  /// (student marker excluded so the same person groups together).
  std::string GroupKey() const;

  friend bool operator==(const AuthorName& a, const AuthorName& b) {
    return a.surname == b.surname && a.given == b.given &&
           a.suffix == b.suffix && a.student_material == b.student_material;
  }
};

/// A volume:first-page (year) citation, e.g. "95:691 (1993)".
struct Citation {
  uint32_t volume = 0;
  uint32_t page = 0;
  uint32_t year = 0;

  /// Renders as "95:691 (1993)".
  std::string ToString() const;

  friend bool operator==(const Citation&, const Citation&) = default;
  friend auto operator<=>(const Citation&, const Citation&) = default;
};

/// One line of the author index: an author, an article title, and where
/// it appeared. Articles with k coauthors contribute k entries (one per
/// author), exactly as in the printed index; `coauthors` preserves the
/// full byline for cross-referencing.
struct Entry {
  AuthorName author;
  std::string title;
  Citation citation;
  /// Other authors of the same article (index form, without asterisk).
  std::vector<std::string> coauthors;

  friend bool operator==(const Entry&, const Entry&) = default;
};

/// Checks structural invariants (non-empty surname and title, plausible
/// volume/page/year ranges). Returns InvalidArgument describing the first
/// violation.
Status ValidateEntry(const Entry& entry);

}  // namespace authidx

#endif  // AUTHIDX_MODEL_RECORD_H_
