#include "authidx/model/serde.h"

#include "authidx/common/coding.h"

namespace authidx {
namespace {

constexpr uint32_t kFormatVersion = 1;
constexpr uint32_t kFlagStudentMaterial = 1u << 0;
// Defensive cap: a corrupted count must not trigger a giant allocation.
constexpr uint32_t kMaxCoauthors = 1u << 16;

}  // namespace

void EncodeEntry(const Entry& entry, std::string* dst) {
  PutVarint32(dst, kFormatVersion);
  PutLengthPrefixed(dst, entry.author.surname);
  PutLengthPrefixed(dst, entry.author.given);
  PutLengthPrefixed(dst, entry.author.suffix);
  uint32_t flags = entry.author.student_material ? kFlagStudentMaterial : 0;
  PutVarint32(dst, flags);
  PutVarint32(dst, entry.citation.volume);
  PutVarint32(dst, entry.citation.page);
  PutVarint32(dst, entry.citation.year);
  PutLengthPrefixed(dst, entry.title);
  PutVarint32(dst, static_cast<uint32_t>(entry.coauthors.size()));
  for (const std::string& coauthor : entry.coauthors) {
    PutLengthPrefixed(dst, coauthor);
  }
}

std::string EncodeEntryToString(const Entry& entry) {
  std::string out;
  EncodeEntry(entry, &out);
  return out;
}

Result<Entry> DecodeEntry(std::string_view* input) {
  uint32_t version = 0;
  AUTHIDX_RETURN_NOT_OK(GetVarint32(input, &version));
  if (version != kFormatVersion) {
    return Status::Corruption("unknown entry format version " +
                              std::to_string(version));
  }
  Entry entry;
  std::string_view piece;
  AUTHIDX_RETURN_NOT_OK(GetLengthPrefixed(input, &piece));
  entry.author.surname = piece;
  AUTHIDX_RETURN_NOT_OK(GetLengthPrefixed(input, &piece));
  entry.author.given = piece;
  AUTHIDX_RETURN_NOT_OK(GetLengthPrefixed(input, &piece));
  entry.author.suffix = piece;
  uint32_t flags = 0;
  AUTHIDX_RETURN_NOT_OK(GetVarint32(input, &flags));
  entry.author.student_material = (flags & kFlagStudentMaterial) != 0;
  AUTHIDX_RETURN_NOT_OK(GetVarint32(input, &entry.citation.volume));
  AUTHIDX_RETURN_NOT_OK(GetVarint32(input, &entry.citation.page));
  AUTHIDX_RETURN_NOT_OK(GetVarint32(input, &entry.citation.year));
  AUTHIDX_RETURN_NOT_OK(GetLengthPrefixed(input, &piece));
  entry.title = piece;
  uint32_t coauthor_count = 0;
  AUTHIDX_RETURN_NOT_OK(GetVarint32(input, &coauthor_count));
  if (coauthor_count > kMaxCoauthors) {
    return Status::Corruption("implausible coauthor count " +
                              std::to_string(coauthor_count));
  }
  entry.coauthors.reserve(coauthor_count);
  for (uint32_t i = 0; i < coauthor_count; ++i) {
    AUTHIDX_RETURN_NOT_OK(GetLengthPrefixed(input, &piece));
    entry.coauthors.emplace_back(piece);
  }
  return entry;
}

Result<Entry> DecodeEntryExact(std::string_view input) {
  AUTHIDX_ASSIGN_OR_RETURN(Entry entry, DecodeEntry(&input));
  if (!input.empty()) {
    return Status::Corruption("trailing bytes after entry");
  }
  return entry;
}

}  // namespace authidx
