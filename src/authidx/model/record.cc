#include "authidx/model/record.h"

#include "authidx/common/strings.h"

namespace authidx {

std::string AuthorName::ToIndexForm() const {
  std::string out = surname;
  if (!given.empty()) {
    out += ", ";
    out += given;
  }
  if (!suffix.empty()) {
    out += ", ";
    out += suffix;
  }
  if (student_material) {
    out += "*";
  }
  return out;
}

std::string AuthorName::ToReadingForm() const {
  std::string out;
  if (!given.empty()) {
    out = given + " ";
  }
  out += surname;
  if (!suffix.empty()) {
    out += ", ";
    out += suffix;
  }
  return out;
}

std::string AuthorName::GroupKey() const {
  std::string out = surname;
  out += ", ";
  out += given;
  if (!suffix.empty()) {
    out += ", ";
    out += suffix;
  }
  return out;
}

std::string Citation::ToString() const {
  return StringPrintf("%u:%u (%u)", volume, page, year);
}

Status ValidateEntry(const Entry& entry) {
  if (entry.author.surname.empty()) {
    return Status::InvalidArgument("entry has empty author surname");
  }
  if (entry.title.empty()) {
    return Status::InvalidArgument("entry has empty title");
  }
  if (entry.citation.volume == 0 || entry.citation.volume > 10000) {
    return Status::InvalidArgument(
        StringPrintf("implausible volume %u", entry.citation.volume));
  }
  if (entry.citation.page == 0 || entry.citation.page > 100000) {
    return Status::InvalidArgument(
        StringPrintf("implausible page %u", entry.citation.page));
  }
  if (entry.citation.year < 1800 || entry.citation.year > 2100) {
    return Status::InvalidArgument(
        StringPrintf("implausible year %u", entry.citation.year));
  }
  return Status::OK();
}

}  // namespace authidx
