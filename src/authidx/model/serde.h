#ifndef AUTHIDX_MODEL_SERDE_H_
#define AUTHIDX_MODEL_SERDE_H_

#include <string>
#include <string_view>

#include "authidx/common/result.h"
#include "authidx/model/record.h"

namespace authidx {

/// Canonical binary encoding of an `Entry`, used as the value format in
/// the storage engine and the WAL.
///
/// Layout (all varint/length-prefixed, little-endian):
///   format_version (varint32, currently 1)
///   surname, given, suffix (length-prefixed)
///   flags (varint32; bit 0 = student_material)
///   volume, page, year (varint32)
///   title (length-prefixed)
///   coauthor_count (varint32), then each coauthor length-prefixed
void EncodeEntry(const Entry& entry, std::string* dst);

/// Convenience wrapper returning the encoded bytes.
std::string EncodeEntryToString(const Entry& entry);

/// Decodes an entry from the front of `*input`, advancing past the
/// consumed bytes. Returns Corruption on malformed input.
Result<Entry> DecodeEntry(std::string_view* input);

/// Decodes an entry occupying all of `input` (trailing bytes are an
/// error).
Result<Entry> DecodeEntryExact(std::string_view input);

}  // namespace authidx

#endif  // AUTHIDX_MODEL_SERDE_H_
