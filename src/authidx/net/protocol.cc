#include "authidx/net/protocol.h"

#include <cstring>

#include "authidx/common/coding.h"
#include "authidx/common/crc32c.h"

namespace authidx::net {

namespace {

// Reinterprets a double's bits for fixed64 transport (exact round-trip,
// unlike decimal text).
uint64_t DoubleToBits(double value) {
  uint64_t bits = 0;
  std::memcpy(&bits, &value, sizeof(bits));
  return bits;
}

double BitsToDouble(uint64_t bits) {
  double value = 0;
  std::memcpy(&value, &bits, sizeof(value));
  return value;
}

}  // namespace

std::string_view OpcodeName(Opcode opcode) {
  for (const OpcodeInfo& info : kOpcodeTable) {
    if (info.opcode == opcode) {
      return info.name;
    }
  }
  return "UNKNOWN";
}

bool IsKnownOpcode(uint8_t value) {
  for (const OpcodeInfo& info : kOpcodeTable) {
    if (static_cast<uint8_t>(info.opcode) == value) {
      return true;
    }
  }
  return false;
}

std::string_view WireStatusName(WireStatus status) {
  for (const WireStatusInfo& info : kWireStatusTable) {
    if (info.status == status) {
      return info.name;
    }
  }
  return "UNKNOWN";
}

WireStatus WireStatusFromStatus(const Status& status) {
  // StatusCode values 0-10 are mirrored one-for-one by design; the
  // static_asserts in net_protocol_test.cc keep them aligned.
  return static_cast<WireStatus>(static_cast<uint8_t>(status.code()));
}

Status StatusFromWire(WireStatus status, std::string message) {
  switch (status) {
    case WireStatus::kOk:
      return Status::OK();
    case WireStatus::kRetryableBusy:
      return Status::ResourceExhausted("RETRYABLE_BUSY: " +
                                       std::move(message));
    case WireStatus::kBadFrame:
      return Status::InvalidArgument("BAD_FRAME: " + std::move(message));
    case WireStatus::kUnknownOpcode:
      return Status::NotSupported("UNKNOWN_OPCODE: " + std::move(message));
    case WireStatus::kNotPrimary:
      // FailedPrecondition is non-transient under common/retry.h, so
      // the client never retries or fails over a rejected mutation.
      return Status::FailedPrecondition("NOT_PRIMARY: " + std::move(message));
    default:
      break;
  }
  uint8_t code = static_cast<uint8_t>(status);
  if (code > static_cast<uint8_t>(StatusCode::kInternal)) {
    return Status::Internal("unassigned wire status " +
                            std::to_string(code) + ": " + std::move(message));
  }
  return Status(static_cast<StatusCode>(code), std::move(message));
}

void EncodeFrame(const FrameHeader& header, std::string_view payload,
                 std::string* dst) {
  // length counts everything after the length field itself.
  uint32_t length = static_cast<uint32_t>(kFrameHeaderBytes - 4 +
                                          payload.size() +
                                          kFrameTrailerBytes);
  size_t body_start = dst->size() + 4;
  PutFixed32(dst, length);
  dst->push_back(static_cast<char>(header.version));
  dst->push_back(static_cast<char>(header.opcode));
  dst->push_back(static_cast<char>(header.flags & 0xff));
  dst->push_back(static_cast<char>((header.flags >> 8) & 0xff));
  PutFixed64(dst, header.request_id);
  dst->append(payload);
  uint32_t crc = crc32c::Value(
      std::string_view(dst->data() + body_start, dst->size() - body_start));
  PutFixed32(dst, crc32c::Mask(crc));
}

DecodeOutcome DecodeFrame(std::string_view input, size_t max_frame_bytes,
                          DecodedFrame* out, Status* error) {
  auto fail = [error](std::string message) {
    if (error != nullptr) {
      *error = Status::InvalidArgument(std::move(message));
    }
    return DecodeOutcome::kError;
  };
  if (input.size() < 4) {
    return DecodeOutcome::kNeedMore;
  }
  uint32_t length = DecodeFixed32(input.data());
  // Minimum: the 12 header bytes after the length field plus the CRC.
  if (length < kFrameHeaderBytes - 4 + kFrameTrailerBytes) {
    return fail("frame length " + std::to_string(length) + " below minimum");
  }
  size_t frame_bytes = 4 + static_cast<size_t>(length);
  if (frame_bytes > max_frame_bytes) {
    return fail("frame of " + std::to_string(frame_bytes) +
                " bytes exceeds cap of " + std::to_string(max_frame_bytes));
  }
  if (input.size() < frame_bytes) {
    return DecodeOutcome::kNeedMore;
  }
  std::string_view body = input.substr(4, frame_bytes - 4 -
                                              kFrameTrailerBytes);
  uint32_t stored_crc = crc32c::Unmask(
      DecodeFixed32(input.data() + frame_bytes - kFrameTrailerBytes));
  uint32_t actual_crc = crc32c::Value(body);
  if (stored_crc != actual_crc) {
    return fail("frame CRC mismatch");
  }
  FrameHeader header;
  header.version = static_cast<uint8_t>(body[0]);
  header.opcode = static_cast<Opcode>(static_cast<uint8_t>(body[1]));
  header.flags = static_cast<uint16_t>(
      static_cast<uint8_t>(body[2]) |
      (static_cast<uint16_t>(static_cast<uint8_t>(body[3])) << 8));
  header.request_id = DecodeFixed64(body.data() + 4);
  if (header.version != kProtocolVersion) {
    return fail("unsupported protocol version " +
                std::to_string(header.version));
  }
  if ((header.flags & ~kKnownFlagsMask) != 0) {
    return fail("unknown bits " +
                std::to_string(header.flags & ~kKnownFlagsMask) +
                " in flags field");
  }
  out->header = header;
  out->payload = body.substr(kFrameHeaderBytes - 4);
  out->frame_bytes = frame_bytes;
  return DecodeOutcome::kFrame;
}

void EncodeTraceContext(const TraceContext& ctx, std::string* dst) {
  PutFixed64(dst, ctx.trace_id.hi);
  PutFixed64(dst, ctx.trace_id.lo);
  dst->push_back(ctx.sampled ? '\x01' : '\x00');
}

Status DecodeTraceContext(std::string_view* payload, TraceContext* ctx) {
  if (payload->size() < kTraceContextBytes) {
    return Status::Corruption("trace context of " +
                              std::to_string(payload->size()) +
                              " bytes, need " +
                              std::to_string(kTraceContextBytes));
  }
  ctx->trace_id.hi = DecodeFixed64(payload->data());
  ctx->trace_id.lo = DecodeFixed64(payload->data() + 8);
  uint8_t sampled = static_cast<uint8_t>((*payload)[16]);
  if (sampled > 1) {
    return Status::Corruption("trace context sampling byte " +
                              std::to_string(sampled) + " is not 0 or 1");
  }
  ctx->sampled = sampled == 1;
  payload->remove_prefix(kTraceContextBytes);
  return Status::OK();
}

void EncodeTraceSpans(const std::vector<obs::Trace::Span>& spans,
                      std::string* dst) {
  PutVarint32(dst, static_cast<uint32_t>(spans.size()));
  uint64_t base_ns = spans.empty() ? 0 : spans.front().start_ns;
  for (const obs::Trace::Span& span : spans) {
    PutLengthPrefixed(dst, span.name);
    PutVarint32(dst, static_cast<uint32_t>(span.depth));
    PutVarint64(dst, span.start_ns - base_ns);
    PutVarint64(dst, span.duration_ns);
  }
}

Status DecodeTraceSpans(std::string_view* payload,
                        std::vector<obs::Trace::Span>* spans) {
  uint32_t count = 0;
  AUTHIDX_RETURN_NOT_OK(GetVarint32(payload, &count));
  // Every span costs at least 4 encoded bytes; a count beyond the
  // remaining payload is corrupt. Same peer-controlled-count defense
  // as DecodeAddRequest: validate before the reserve().
  if (count > payload->size()) {
    return Status::Corruption("span count " + std::to_string(count) +
                              " exceeds remaining payload of " +
                              std::to_string(payload->size()) + " bytes");
  }
  spans->clear();
  spans->reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    obs::Trace::Span span;
    std::string_view name;
    AUTHIDX_RETURN_NOT_OK(GetLengthPrefixed(payload, &name));
    span.name = std::string(name);
    uint32_t depth = 0;
    AUTHIDX_RETURN_NOT_OK(GetVarint32(payload, &depth));
    span.depth = static_cast<int>(depth);
    AUTHIDX_RETURN_NOT_OK(GetVarint64(payload, &span.start_ns));
    AUTHIDX_RETURN_NOT_OK(GetVarint64(payload, &span.duration_ns));
    spans->push_back(std::move(span));
  }
  return Status::OK();
}

void EncodeQueryRequest(std::string_view query_text, std::string* dst) {
  PutLengthPrefixed(dst, query_text);
}

Status DecodeQueryRequest(std::string_view payload,
                          std::string_view* query_text) {
  AUTHIDX_RETURN_NOT_OK(GetLengthPrefixed(&payload, query_text));
  if (!payload.empty()) {
    return Status::Corruption("trailing bytes after QUERY request");
  }
  return Status::OK();
}

void EncodeAddRequest(const std::vector<std::string>& tsv_lines,
                      std::string* dst) {
  PutVarint32(dst, static_cast<uint32_t>(tsv_lines.size()));
  for (const std::string& line : tsv_lines) {
    PutLengthPrefixed(dst, line);
  }
}

Status DecodeAddRequest(std::string_view payload,
                        std::vector<std::string_view>* tsv_lines) {
  uint32_t count = 0;
  AUTHIDX_RETURN_NOT_OK(GetVarint32(&payload, &count));
  // Every line costs at least its 1-byte length prefix, so a count
  // beyond the remaining payload is corrupt. Validating before the
  // reserve() matters: the count is peer-controlled, and a tiny
  // CRC-valid frame claiming 2^32-1 lines must not force a multi-GiB
  // allocation (whose bad_alloc would escape the caller).
  if (count > payload.size()) {
    return Status::Corruption("ADD line count " + std::to_string(count) +
                              " exceeds remaining payload of " +
                              std::to_string(payload.size()) + " bytes");
  }
  tsv_lines->clear();
  tsv_lines->reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    std::string_view line;
    AUTHIDX_RETURN_NOT_OK(GetLengthPrefixed(&payload, &line));
    tsv_lines->push_back(line);
  }
  if (!payload.empty()) {
    return Status::Corruption("trailing bytes after ADD request");
  }
  return Status::OK();
}

void EncodeQueryResult(const WireQueryResult& result, std::string* dst) {
  PutVarint64(dst, result.total_matches);
  dst->push_back(static_cast<char>(result.plan));
  PutVarint32(dst, static_cast<uint32_t>(result.hits.size()));
  for (const WireHit& hit : result.hits) {
    PutVarint32(dst, hit.id);
    PutFixed64(dst, DoubleToBits(hit.score));
    PutLengthPrefixed(dst, hit.author);
    PutLengthPrefixed(dst, hit.title);
    PutLengthPrefixed(dst, hit.citation);
  }
}

Status DecodeQueryResult(std::string_view body, WireQueryResult* result) {
  AUTHIDX_RETURN_NOT_OK(GetVarint64(&body, &result->total_matches));
  if (body.empty()) {
    return Status::Corruption("truncated QUERY result");
  }
  result->plan = static_cast<uint8_t>(body[0]);
  body.remove_prefix(1);
  uint32_t count = 0;
  AUTHIDX_RETURN_NOT_OK(GetVarint32(&body, &count));
  // Every hit costs at least 12 encoded bytes; a count beyond the
  // remaining body is corrupt. Same defense as DecodeAddRequest: a
  // forged count must never size the reserve() below.
  if (count > body.size()) {
    return Status::Corruption("QUERY hit count " + std::to_string(count) +
                              " exceeds remaining body of " +
                              std::to_string(body.size()) + " bytes");
  }
  result->hits.clear();
  result->hits.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    WireHit hit;
    AUTHIDX_RETURN_NOT_OK(GetVarint32(&body, &hit.id));
    if (body.size() < 8) {
      return Status::Corruption("truncated QUERY hit score");
    }
    hit.score = BitsToDouble(DecodeFixed64(body.data()));
    body.remove_prefix(8);
    std::string_view field;
    AUTHIDX_RETURN_NOT_OK(GetLengthPrefixed(&body, &field));
    hit.author = std::string(field);
    AUTHIDX_RETURN_NOT_OK(GetLengthPrefixed(&body, &field));
    hit.title = std::string(field);
    AUTHIDX_RETURN_NOT_OK(GetLengthPrefixed(&body, &field));
    hit.citation = std::string(field);
    result->hits.push_back(std::move(hit));
  }
  if (!body.empty()) {
    return Status::Corruption("trailing bytes after QUERY result");
  }
  return Status::OK();
}

void EncodeStats(const WireStats& stats, std::string* dst) {
  PutVarint64(dst, stats.entry_count);
  PutVarint64(dst, stats.group_count);
}

Status DecodeStats(std::string_view body, WireStats* stats) {
  AUTHIDX_RETURN_NOT_OK(GetVarint64(&body, &stats->entry_count));
  AUTHIDX_RETURN_NOT_OK(GetVarint64(&body, &stats->group_count));
  if (!body.empty()) {
    return Status::Corruption("trailing bytes after STATS body");
  }
  return Status::OK();
}

namespace {

void EncodeWirePosition(const WirePosition& pos, std::string* dst) {
  PutFixed64(dst, pos.wal_number);
  PutFixed64(dst, pos.offset);
}

Status DecodeWirePosition(std::string_view* input, WirePosition* pos) {
  if (input->size() < 16) {
    return Status::Corruption("truncated WAL position");
  }
  pos->wal_number = DecodeFixed64(input->data());
  pos->offset = DecodeFixed64(input->data() + 8);
  input->remove_prefix(16);
  return Status::OK();
}

}  // namespace

void EncodeReplSubscribe(const WirePosition& position, std::string* dst) {
  EncodeWirePosition(position, dst);
}

Status DecodeReplSubscribe(std::string_view payload, WirePosition* position) {
  AUTHIDX_RETURN_NOT_OK(DecodeWirePosition(&payload, position));
  if (!payload.empty()) {
    return Status::Corruption("trailing bytes after REPL_SUBSCRIBE request");
  }
  return Status::OK();
}

void EncodeReplSubscribeAck(const WireReplSubscribeAck& ack,
                            std::string* dst) {
  dst->push_back(static_cast<char>(ack.mode));
  EncodeWirePosition(ack.start, dst);
}

Status DecodeReplSubscribeAck(std::string_view body,
                              WireReplSubscribeAck* ack) {
  if (body.empty()) {
    return Status::Corruption("empty REPL_SUBSCRIBE ack");
  }
  ack->mode = static_cast<uint8_t>(body[0]);
  if (ack->mode > 1) {
    return Status::Corruption("REPL_SUBSCRIBE ack mode " +
                              std::to_string(ack->mode) + " is not 0 or 1");
  }
  body.remove_prefix(1);
  AUTHIDX_RETURN_NOT_OK(DecodeWirePosition(&body, &ack->start));
  if (!body.empty()) {
    return Status::Corruption("trailing bytes after REPL_SUBSCRIBE ack");
  }
  return Status::OK();
}

void EncodeReplRecords(const WireReplRecords& batch, std::string* dst) {
  EncodeWirePosition(batch.end, dst);
  EncodeWirePosition(batch.committed, dst);
  PutVarint32(dst, static_cast<uint32_t>(batch.records.size()));
  for (const std::string& record : batch.records) {
    PutLengthPrefixed(dst, record);
  }
}

Status DecodeReplRecords(std::string_view payload, WireReplRecords* batch) {
  AUTHIDX_RETURN_NOT_OK(DecodeWirePosition(&payload, &batch->end));
  AUTHIDX_RETURN_NOT_OK(DecodeWirePosition(&payload, &batch->committed));
  uint32_t count = 0;
  AUTHIDX_RETURN_NOT_OK(GetVarint32(&payload, &count));
  // Every record costs at least its 1-byte length prefix; a count
  // beyond the remaining payload is corrupt. Same peer-controlled-count
  // defense as DecodeAddRequest: validate before the reserve().
  if (count > payload.size()) {
    return Status::Corruption("REPL record count " + std::to_string(count) +
                              " exceeds remaining payload of " +
                              std::to_string(payload.size()) + " bytes");
  }
  batch->records.clear();
  batch->records.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    std::string_view record;
    AUTHIDX_RETURN_NOT_OK(GetLengthPrefixed(&payload, &record));
    batch->records.emplace_back(record);
  }
  if (!payload.empty()) {
    return Status::Corruption("trailing bytes after REPL_RECORDS payload");
  }
  return Status::OK();
}

void EncodeReplHeartbeat(const WireReplHeartbeat& hb, std::string* dst) {
  EncodeWirePosition(hb.committed, dst);
  dst->push_back(static_cast<char>(hb.degraded));
}

Status DecodeReplHeartbeat(std::string_view payload, WireReplHeartbeat* hb) {
  AUTHIDX_RETURN_NOT_OK(DecodeWirePosition(&payload, &hb->committed));
  if (payload.size() != 1) {
    return Status::Corruption("malformed REPL_HEARTBEAT payload");
  }
  hb->degraded = static_cast<uint8_t>(payload[0]);
  if (hb->degraded > 1) {
    return Status::Corruption("REPL_HEARTBEAT degraded byte " +
                              std::to_string(hb->degraded) + " is not 0 or 1");
  }
  return Status::OK();
}

void EncodeReplSnapshot(const WireReplSnapshot& chunk, std::string* dst) {
  dst->push_back(static_cast<char>(chunk.done));
  EncodeWirePosition(chunk.resume, dst);
  PutVarint32(dst, static_cast<uint32_t>(chunk.pairs.size()));
  for (const auto& [key, value] : chunk.pairs) {
    PutLengthPrefixed(dst, key);
    PutLengthPrefixed(dst, value);
  }
}

Status DecodeReplSnapshot(std::string_view payload, WireReplSnapshot* chunk) {
  if (payload.empty()) {
    return Status::Corruption("empty REPL_SNAPSHOT payload");
  }
  chunk->done = static_cast<uint8_t>(payload[0]);
  if (chunk->done > 1) {
    return Status::Corruption("REPL_SNAPSHOT done byte " +
                              std::to_string(chunk->done) + " is not 0 or 1");
  }
  payload.remove_prefix(1);
  AUTHIDX_RETURN_NOT_OK(DecodeWirePosition(&payload, &chunk->resume));
  uint32_t count = 0;
  AUTHIDX_RETURN_NOT_OK(GetVarint32(&payload, &count));
  // Forged-count defense, as in DecodeReplRecords: each pair costs at
  // least two 1-byte length prefixes.
  if (count > payload.size()) {
    return Status::Corruption("REPL snapshot pair count " +
                              std::to_string(count) +
                              " exceeds remaining payload of " +
                              std::to_string(payload.size()) + " bytes");
  }
  chunk->pairs.clear();
  chunk->pairs.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    std::string_view key, value;
    AUTHIDX_RETURN_NOT_OK(GetLengthPrefixed(&payload, &key));
    AUTHIDX_RETURN_NOT_OK(GetLengthPrefixed(&payload, &value));
    chunk->pairs.emplace_back(std::string(key), std::string(value));
  }
  if (!payload.empty()) {
    return Status::Corruption("trailing bytes after REPL_SNAPSHOT payload");
  }
  return Status::OK();
}

void EncodeResponsePayload(const ResponsePayload& response,
                           std::string* dst) {
  dst->push_back(static_cast<char>(response.status));
  PutLengthPrefixed(dst, response.message);
  dst->append(response.body);
}

Status DecodeResponsePayload(std::string_view payload,
                             ResponsePayload* response) {
  if (payload.empty()) {
    return Status::Corruption("empty RESPONSE payload");
  }
  response->status = static_cast<WireStatus>(static_cast<uint8_t>(payload[0]));
  payload.remove_prefix(1);
  std::string_view message;
  AUTHIDX_RETURN_NOT_OK(GetLengthPrefixed(&payload, &message));
  response->message = std::string(message);
  response->body = std::string(payload);
  return Status::OK();
}

}  // namespace authidx::net
