#ifndef AUTHIDX_NET_REPLICA_H_
#define AUTHIDX_NET_REPLICA_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>

#include "authidx/common/mutex.h"
#include "authidx/common/random.h"
#include "authidx/common/status.h"
#include "authidx/common/thread_annotations.h"
#include "authidx/core/author_index.h"
#include "authidx/net/client.h"
#include "authidx/obs/log.h"
#include "authidx/obs/metrics.h"
#include "authidx/storage/replication.h"

namespace authidx::net {

/// Tuning knobs for a ReplicationFollower.
struct ReplicaOptions {
  /// The primary's address.
  std::string primary_host = "127.0.0.1";
  /// The primary's RPC port.
  int primary_port = 0;
  /// Bound on each socket receive while streaming. Must comfortably
  /// exceed the primary's heartbeat interval: a receive timeout is read
  /// as "primary silent", the connection is dropped, and the reconnect
  /// loop takes over. Also bounds how long Stop() can block.
  int io_timeout_ms = 5000;
  /// Reconnect backoff: attempts are unbounded (a follower's job is to
  /// outlive primary restarts), the delay doubles from base to max.
  uint64_t reconnect_base_delay_us = 50 * 1000;
  /// Backoff ceiling for the doubling above.
  uint64_t reconnect_max_delay_us = 5 * 1000 * 1000;
  /// Registry for the authidx_repl_* follower instruments (must outlive
  /// the follower). nullptr uses the catalog's own registry so one
  /// /metrics page covers the engine and the replication loop.
  obs::MetricsRegistry* metrics = nullptr;
  /// Logger for subscribe/reconnect/bootstrap events (must outlive the
  /// follower). nullptr means obs::Logger::Disabled().
  obs::Logger* logger = nullptr;
};

/// The follower half of WAL shipping: subscribes to a primary server
/// (REPL_SUBSCRIBE), applies the pushed REPL_RECORDS / REPL_SNAPSHOT
/// stream into a replica catalog (core::AuthorIndex::OpenReplica), and
/// durably commits its cursor through a storage::ReplicationApplier —
/// only *after* the records up to it are applied, so a crash at any
/// point re-delivers records the catalog already holds and the
/// idempotent apply path skips them.
///
/// Two ways to drive it:
///  * CatchUpOnce() — one synchronous pass: connect, subscribe, apply
///    until the stream reports the follower caught up, then disconnect.
///    Deterministic; what the tests and the initial sync use.
///  * Start()/Stop() — a background thread doing the same loop forever,
///    reconnecting with capped exponential backoff on any failure
///    (authidx_repl_reconnects_total counts them).
///
/// Thread safety: Start/Stop/CatchUpOnce must be called from one
/// thread; the metric accessors (applied_position, NsSinceLastContact,
/// primary_degraded, ...) are safe from any thread.
class ReplicationFollower {
 public:
  /// Follower feeding `catalog` (opened with OpenReplica, caller-owned,
  /// must outlive the follower) whose store lives in `dir` (where the
  /// REPL_POSITION cursor sidecar is kept).
  ReplicationFollower(core::AuthorIndex* catalog, std::string dir,
                      ReplicaOptions options);

  /// Stops the background loop if running.
  ~ReplicationFollower();

  ReplicationFollower(const ReplicationFollower&) = delete;
  ReplicationFollower& operator=(const ReplicationFollower&) = delete;

  /// One synchronous pass: subscribe at the durable cursor and apply
  /// the stream until caught up with the primary's committed frontier.
  /// An empty follower (cursor {0,0}) bootstraps from a snapshot first.
  /// A NOT_FOUND subscribe answer (the cursor's WAL was garbage-
  /// collected, or the primary restarted) re-subscribes at {0,0} when
  /// the catalog is still empty, and is a permanent error otherwise —
  /// the operator must reseed the replica from scratch.
  Status CatchUpOnce();

  /// Spawns the background replication loop. Fails if already running.
  Status Start();

  /// Stops and joins the background loop. Idempotent.
  void Stop();

  /// True between Start() and Stop().
  bool running() const { return running_.load(std::memory_order_acquire); }

  /// Nanoseconds since the last frame from the primary (records,
  /// snapshot chunk, or heartbeat); UINT64_MAX before first contact.
  /// The staleness signal behind a replica's /healthz.
  uint64_t NsSinceLastContact() const;

  /// True when the primary's last heartbeat reported its storage
  /// engine degraded.
  bool primary_degraded() const {
    return primary_degraded_.load(std::memory_order_acquire);
  }

  /// The durably committed replication cursor (next unread WAL byte).
  storage::WalPosition applied_position() const;

  /// The primary's committed frontier as of the last frame.
  storage::WalPosition primary_committed() const;

 private:
  // The streaming core: connect, subscribe, apply frames. Returns OK
  // when `stop_when_caught_up` and the stream reached the committed
  // frontier; otherwise only returns on error or Stop().
  Status StreamOnce(bool stop_when_caught_up);

  // Applies one REPL_RECORDS batch and commits the cursor.
  Status ApplyRecordsBatch(std::string_view payload);

  // Applies one REPL_SNAPSHOT chunk (synthesizing put records); commits
  // the cursor when the chunk is final.
  Status ApplySnapshotChunk(std::string_view payload, bool* done);

  void NoteContact();
  void UpdateLag() AUTHIDX_EXCLUDES(pos_mu_);

  core::AuthorIndex* catalog_;
  ReplicaOptions options_;
  storage::ReplicationApplier applier_;
  obs::Logger* log_;  // Never null (Logger::Disabled()).
  Random backoff_rng_;

  obs::Counter* records_applied_total_ = nullptr;
  obs::Counter* reconnects_total_ = nullptr;
  obs::Counter* snapshot_pairs_total_ = nullptr;
  obs::Gauge* lag_records_ = nullptr;
  obs::Gauge* lag_bytes_ = nullptr;
  obs::LatencyHistogram* apply_ns_ = nullptr;
  std::unique_ptr<obs::MetricsRegistry> owned_metrics_;

  mutable Mutex pos_mu_;
  storage::WalPosition applied_pos_ AUTHIDX_GUARDED_BY(pos_mu_);
  storage::WalPosition committed_pos_ AUTHIDX_GUARDED_BY(pos_mu_);

  std::atomic<uint64_t> last_contact_ns_{0};
  std::atomic<bool> primary_degraded_{false};
  std::atomic<bool> stop_{false};
  std::atomic<bool> running_{false};
  std::thread loop_thread_;
};

}  // namespace authidx::net

#endif  // AUTHIDX_NET_REPLICA_H_
