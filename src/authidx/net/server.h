#ifndef AUTHIDX_NET_SERVER_H_
#define AUTHIDX_NET_SERVER_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "authidx/common/mutex.h"
#include "authidx/common/random.h"
#include "authidx/common/status.h"
#include "authidx/common/thread_annotations.h"
#include "authidx/core/author_index.h"
#include "authidx/net/protocol.h"
#include "authidx/obs/log.h"
#include "authidx/obs/metrics.h"
#include "authidx/obs/trace_store.h"
#include "authidx/storage/replication.h"

namespace authidx::net {

/// Tuning knobs for a Server. Defaults suit tests and small
/// deployments; docs/SERVER.md is the operator guide.
struct ServerOptions {
  /// TCP port to bind on 127.0.0.1; 0 picks an ephemeral port (see
  /// Server::port()).
  int port = 0;
  /// Worker threads executing requests against the catalog. The
  /// catalog is already thread-safe, so queries in different workers
  /// run in parallel.
  int num_workers = 4;
  /// Connections beyond this are accepted and immediately closed
  /// (authidx_server_rejected_connections_total counts them).
  size_t max_connections = 1024;
  /// Frames announcing more than this many bytes (header + payload +
  /// CRC) poison the connection before the payload is buffered.
  size_t max_frame_bytes = kMaxFrameBytesDefault;
  /// Per-connection pipelining cap: requests arriving while this many
  /// are already in flight on the same connection are shed with
  /// RETRYABLE_BUSY.
  size_t max_pipeline = 64;
  /// Admission control: requests arriving while the worker queue holds
  /// this many are shed with RETRYABLE_BUSY instead of growing the
  /// queue without bound (the RPC-layer analogue of the storage
  /// engine's write-stall backpressure).
  size_t queue_limit = 256;
  /// Bound on a response write to a slow client; on expiry the
  /// connection is dropped (a stalled reader must not hold a worker).
  int send_timeout_ms = 5000;
  /// Registry for the authidx_server_* / authidx_shed_* instruments
  /// (must outlive the server). nullptr gives the server a private
  /// registry, readable via metrics(). Pass the catalog's registry
  /// (AuthorIndex::mutable_metrics()) so one /metrics page covers
  /// engine and server.
  obs::MetricsRegistry* metrics = nullptr;
  /// Logger for lifecycle events (must outlive the server). nullptr
  /// means obs::Logger::Disabled().
  obs::Logger* logger = nullptr;
  /// Head sampling: record a full lifecycle span tree for one request
  /// in every this-many that arrive without a client trace context
  /// (requests whose frame carries one follow the client's sampling
  /// decision instead). 0 disables server-side head sampling; requests
  /// slower than the catalog's slow-query threshold are still sampled.
  uint64_t trace_sample_every = 0;
  /// Sampled traces retained per latency-decade bucket of the trace
  /// store (see obs::TraceStore; total capacity is 6x this).
  size_t trace_store_per_bucket = 8;
  /// Test-only: every request handler sleeps this long before
  /// executing, making "worker busy" states deterministic in shedding
  /// and drain tests. 0 in production.
  uint64_t handler_delay_ms_for_test = 0;
  /// Replica mode: this server fronts a follower catalog, so ADD and
  /// REPL_SUBSCRIBE are answered NOT_PRIMARY (no cascading replication)
  /// and the feeder thread is never started. Read paths (PING/QUERY/
  /// STATS) and FLUSH serve normally. Forced on automatically when the
  /// catalog reports is_replica().
  bool replica = false;
  /// Replication feeder cadence: how often a subscribed follower gets a
  /// REPL_HEARTBEAT (and how quickly freshly committed records ship
  /// when the feeder was idle).
  int repl_heartbeat_interval_ms = 500;
  /// Caps on one REPL_RECORDS batch read from the WAL per feeder pass.
  size_t repl_max_batch_records = 512;
  /// Byte sibling of repl_max_batch_records; whichever trips first.
  size_t repl_max_batch_bytes = 256 * 1024;
  /// Cap on the encoded pairs in one REPL_SNAPSHOT bootstrap chunk.
  size_t repl_snapshot_chunk_bytes = 256 * 1024;
};

/// The authidx network front end: accepts loopback TCP connections
/// speaking the framed wire protocol (net/protocol.h, docs/PROTOCOL.md)
/// and executes requests against an AuthorIndex.
///
/// Threading: one event-loop thread owns the listening socket, an epoll
/// set, and every connection's read side; it parses frames and either
/// sheds them (RETRYABLE_BUSY, see ServerOptions::queue_limit /
/// max_pipeline) or hands them to a pool of worker threads. The event
/// loop never writes to a socket — shed and protocol-error replies are
/// handed to the workers as precomputed responses, so a peer that stops
/// reading can stall at most one worker (for send_timeout_ms), never
/// the loop that serves every other connection. Workers execute
/// against the (already thread-safe) catalog and write the response
/// frame back under a per-connection write lock — responses to
/// pipelined requests may interleave in any order, which is why every
/// frame echoes its request_id. Stop() drains: queued requests are
/// still executed and answered before the workers exit.
class Server {
 public:
  /// Server over `catalog` (caller-owned, must outlive the server).
  /// Not yet listening; call Start().
  Server(core::AuthorIndex* catalog, ServerOptions options);

  /// Stops the server if still running.
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds 127.0.0.1:options.port, spawns the event loop and workers,
  /// and returns. Fails if already started or the bind fails.
  Status Start();

  /// Port actually bound; valid after a successful Start().
  int port() const { return port_; }

  /// True between a successful Start() and Stop().
  bool running() const { return running_.load(std::memory_order_acquire); }

  /// Stops accepting and reading, drains every already-queued request
  /// (responses are written), then joins all threads and closes every
  /// connection. Idempotent.
  void Stop();

  /// The registry holding this server's instruments (the one passed in
  /// options, or the private default).
  const obs::MetricsRegistry& metrics() const { return *metrics_; }

  /// The store of sampled completed RPC traces backing /tracez.
  const obs::TraceStore& trace_store() const { return trace_store_; }

  /// The /rpcz page: a JSON object with one RED row per opcode
  /// (request count, error count, latency quantiles, queue-wait vs
  /// execute time) plus aggregate shed/bad-frame/truncation counters
  /// and the queue-wait and execute histograms. Thread-safe.
  std::string RpczJson() const;

  /// The /tracez page: recent sampled traces bucketed by latency
  /// decade, rendered as span trees with trace ids. Thread-safe.
  std::string TracezText() const { return trace_store_.RenderText(); }

 private:
  struct Connection;  // Defined in server.cc (owns the fd).
  struct Subscriber;  // Defined in server.cc (a replication follower).

  // Per-frame context captured by the event loop before enqueueing:
  // the decoded trace extension (if any) and lifecycle timestamps.
  // All POD — carrying it through the queue never allocates.
  struct FrameMeta {
    TraceContext trace_ctx;
    // The request frame carried kFlagTraceContext; the response must
    // carry the context back regardless of the sampling decision.
    bool traced = false;
    uint64_t read_ns = 0;       // Before the read() that completed it.
    uint64_t read_done_ns = 0;  // After that read() returned.
    uint64_t decoded_ns = 0;    // After DecodeFrame accepted it.
  };

  // One parsed request frame awaiting a worker — or, when has_response
  // is set, a precomputed control reply (shed / protocol error) that a
  // worker only needs to write (the event loop must never write).
  struct Task {
    std::shared_ptr<Connection> conn;
    FrameHeader header;
    std::string payload;
    FrameMeta meta;
    // Record a lifecycle span tree for this request (client decision
    // when traced, head sampler otherwise).
    bool sampled = false;
    uint64_t enqueue_ns = 0;
    bool has_response = false;
    ResponsePayload response;
    // Shut the connection down after writing (BAD_FRAME semantics).
    bool close_after = false;
  };

  void EventLoop();
  void WorkerLoop();

  // Accepts as many pending connections as the loopback backlog holds.
  void AcceptPending();

  // Reads available bytes, parses frames, enqueues or sheds them.
  // Returns false when the connection died and was unregistered.
  bool HandleReadable(const std::shared_ptr<Connection>& conn);

  // Enqueues a parsed frame or sheds it with RETRYABLE_BUSY. Returns
  // false when the connection was dropped (control-reply flood).
  bool EnqueueOrShed(const std::shared_ptr<Connection>& conn,
                     const FrameHeader& header, std::string_view payload,
                     const FrameMeta& meta);

  // Hands a precomputed reply (shed or protocol error) to the worker
  // pool; the event loop must never block on a peer's socket itself.
  // Returns false when the connection was dropped instead because too
  // many control replies were already pending on it.
  bool EnqueueControl(const std::shared_ptr<Connection>& conn,
                      uint64_t request_id, ResponsePayload response,
                      bool close_after);

  // Stops watching `conn` (no further reads) without shutting the
  // socket down, so an already-queued reply can still be written; the
  // fd closes when the last shared_ptr drops.
  void Quarantine(const std::shared_ptr<Connection>& conn);

  // Executes one request and writes its response frame.
  void ExecuteTask(const Task& task);

  // Builds the response payload for one request (no I/O except the
  // replication-subscribe setup). Engine spans are appended to `trace`
  // when non-null (sampled requests only). An accepted REPL_SUBSCRIBE
  // fills `*pending_sub` (registered but inactive); ExecuteTask
  // activates it only after the ack response is on the wire, so the
  // RESPONSE frame always precedes the stream.
  ResponsePayload HandleRequest(const Task& task, obs::Trace* trace,
                                std::shared_ptr<Subscriber>* pending_sub);

  // --- replication feeder (primary side of WAL shipping) ---

  // Handles one REPL_SUBSCRIBE: validates the cursor (or sets up a
  // snapshot bootstrap), registers the subscriber inactive, and builds
  // the ack. On a non-OK response nothing stays registered.
  ResponsePayload HandleReplSubscribe(
      const Task& task, std::shared_ptr<Subscriber>* pending_sub);

  // Streams records/snapshot chunks/heartbeats to every active
  // subscriber at the repl_heartbeat_interval_ms cadence.
  void FeederLoop();

  // One feeder pass over `sub`. Returns false when the subscriber is
  // dead (connection closed or unservable) and must be dropped.
  bool FeedSubscriber(const std::shared_ptr<Subscriber>& sub,
                      storage::ReplicationSource* source);

  // Registers `sub` (inactive) and re-pins WALs to cover it.
  void RegisterSubscriber(const std::shared_ptr<Subscriber>& sub);

  // Marks `sub` live for the feeder (its ack is on the wire).
  void ActivateSubscriber(const std::shared_ptr<Subscriber>& sub);

  // Drops `sub` and recomputes the WAL pin.
  void RemoveSubscriber(const std::shared_ptr<Subscriber>& sub);

  // Wakes the feeder when subscribers exist, so a committed mutation
  // ships immediately instead of at the next heartbeat tick. Best
  // effort: a missed wakeup only costs one interval of lag.
  void KickFeeder();

  // Re-pins the primary's WALs at the minimum cursor over all
  // subscribers (UINT64_MAX — release everything — when none remain).
  // Caller must hold feeder_mu_.
  void UpdateWalPinLocked() AUTHIDX_REQUIRES(feeder_mu_);

  // Writes one non-RESPONSE stream frame (REPL_RECORDS / REPL_SNAPSHOT
  // / REPL_HEARTBEAT) under the connection's write lock. Returns false
  // and poisons the connection on failure.
  bool WriteStreamFrame(const std::shared_ptr<Connection>& conn,
                        Opcode opcode, uint64_t request_id,
                        std::string_view payload);

  // Serializes and writes a response frame on `conn` (takes its write
  // lock; drops the connection on write failure). A non-empty
  // trace_prefix (encoded trace context + span list) is spliced ahead
  // of the response payload with kFlagTraceContext set.
  void WriteResponse(const std::shared_ptr<Connection>& conn,
                     uint64_t request_id, const ResponsePayload& response,
                     std::string_view trace_prefix);

  // A fresh nonzero trace id from the server's RNG. Thread-safe.
  obs::TraceId GenerateTraceId();

  // Removes `conn` from the epoll set and the live map.
  void Unregister(const std::shared_ptr<Connection>& conn);

  core::AuthorIndex* catalog_;
  ServerOptions options_;

  // Set when options.metrics == nullptr; metrics_ then points at it.
  std::unique_ptr<obs::MetricsRegistry> owned_metrics_;
  obs::MetricsRegistry* metrics_ = nullptr;
  obs::Logger* log_ = nullptr;  // Never null (Logger::Disabled()).

  // Request opcodes get a dense index (PING=0 .. REPL_SUBSCRIBE=5) for
  // the per-opcode instrument arrays below.
  static constexpr size_t kNumOps = kRequestOpcodeCount;

  obs::Counter* connections_total_ = nullptr;
  obs::Gauge* active_connections_ = nullptr;
  obs::Counter* rejected_connections_total_ = nullptr;
  obs::Counter* requests_total_ = nullptr;
  obs::Counter* errors_total_ = nullptr;
  obs::Counter* shed_requests_total_ = nullptr;
  obs::Counter* bad_frames_total_ = nullptr;
  obs::Counter* truncated_results_total_ = nullptr;
  obs::Gauge* queue_depth_ = nullptr;
  obs::LatencyHistogram* request_ns_ = nullptr;
  obs::LatencyHistogram* queue_wait_ns_ = nullptr;
  obs::LatencyHistogram* execute_ns_ = nullptr;
  obs::Counter* bytes_in_total_ = nullptr;
  obs::Counter* bytes_out_total_ = nullptr;
  // Per-opcode views of the request/error/latency families (labeled
  // `{op="QUERY"}` etc. on /metrics).
  obs::Counter* op_requests_total_[kNumOps] = {};
  obs::Counter* op_errors_total_[kNumOps] = {};
  obs::LatencyHistogram* op_request_ns_[kNumOps] = {};
  // Per-opcode queue-wait vs execute time for the /rpcz breakdown
  // (plain relaxed sums; the aggregate histograms carry the quantiles).
  std::atomic<uint64_t> op_queue_wait_sum_ns_[kNumOps] = {};
  std::atomic<uint64_t> op_execute_sum_ns_[kNumOps] = {};

  obs::TraceSampler sampler_;
  obs::TraceStore trace_store_;
  Mutex trace_mu_;
  // Generates trace ids for head-sampled requests that arrived without
  // a client context (and for slow-path always-samples).
  Random trace_rng_ AUTHIDX_GUARDED_BY(trace_mu_);

  std::atomic<bool> running_{false};
  int listen_fd_ = -1;
  int epoll_fd_ = -1;
  int wake_fd_ = -1;  // eventfd: Stop() unblocks epoll_wait().
  int port_ = 0;

  std::thread event_thread_;
  std::vector<std::thread> workers_;

  Mutex queue_mu_;
  CondVar queue_cv_;
  std::deque<Task> queue_ AUTHIDX_GUARDED_BY(queue_mu_);
  // Precomputed shed/error replies; drained ahead of queue_ (cheap,
  // already built, and generated precisely when queue_ is full).
  std::deque<Task> control_queue_ AUTHIDX_GUARDED_BY(queue_mu_);
  // Set by Stop() after the event loop exits; workers drain the queue
  // and then return.
  bool stopping_ AUTHIDX_GUARDED_BY(queue_mu_) = false;

  Mutex conns_mu_;
  // Live connections by fd. Only the event loop inserts; the event
  // loop and Stop() erase.
  std::unordered_map<int, std::shared_ptr<Connection>> conns_
      AUTHIDX_GUARDED_BY(conns_mu_);

  // --- replication feeder state ---
  // Started by Start() when the catalog is a storage-backed primary;
  // never started in replica mode or for in-memory catalogs.
  std::thread feeder_thread_;
  Mutex feeder_mu_;
  CondVar feeder_cv_;
  // Membership is guarded by feeder_mu_; a Subscriber's mutable fields
  // (cursor, snapshot iterator) are touched only by the feeder thread
  // once the subscriber is active.
  std::vector<std::shared_ptr<Subscriber>> subscribers_
      AUTHIDX_GUARDED_BY(feeder_mu_);
  bool feeder_stop_ AUTHIDX_GUARDED_BY(feeder_mu_) = false;

  obs::Counter* repl_records_shipped_total_ = nullptr;
  obs::Counter* repl_snapshot_pairs_shipped_total_ = nullptr;
  obs::Gauge* repl_subscribers_ = nullptr;
};

}  // namespace authidx::net

#endif  // AUTHIDX_NET_SERVER_H_
