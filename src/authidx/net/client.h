#ifndef AUTHIDX_NET_CLIENT_H_
#define AUTHIDX_NET_CLIENT_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "authidx/common/random.h"
#include "authidx/common/result.h"
#include "authidx/common/retry.h"
#include "authidx/common/status.h"
#include "authidx/net/protocol.h"
#include "authidx/obs/log.h"

namespace authidx::net {

/// Connection settings for a Client.
struct ClientOptions {
  /// Server host: a dotted IPv4 address or "localhost".
  std::string host = "127.0.0.1";
  /// Server TCP port.
  int port = 0;
  /// Bound on each socket send/receive; on expiry the call fails with
  /// IOError (transient, so the retry layer reconnects and re-sends —
  /// except for a fully sent ADD, which is never blindly re-sent; see
  /// the class comment).
  int io_timeout_ms = 5000;
  /// Total wall-clock budget for one high-level call, spanning every
  /// retry and failover attempt; 0 disables it. Enforced through
  /// SO_RCVTIMEO/SO_SNDTIMEO (clamped to the remaining budget before
  /// each attempt), so even a wedged server cannot hold the call past
  /// the deadline. Expiry surfaces as IOError — transient — so read
  /// failover kicks in instead of hanging.
  int deadline_ms = 0;
  /// Read-failover endpoints ("host:port"). When a read-only call
  /// (PING/QUERY/STATS) hits a transient failure — primary unreachable,
  /// reset, deadline expired — the client rotates to the next endpoint
  /// (primary, then each replica, round-robin) before retrying.
  /// Mutations (ADD/FLUSH) never fail over: they are pinned to the
  /// primary, and a follower would reject them with NOT_PRIMARY.
  std::vector<std::string> replicas;
  /// Frames announcing more than this many bytes are rejected
  /// client-side and the connection dropped.
  size_t max_frame_bytes = kMaxFrameBytesDefault;
  /// Backoff policy for transparent reconnect/retry: transient
  /// failures (connection reset, timeout, server RETRYABLE_BUSY) are
  /// retried up to max_attempts with exponential jittered backoff.
  /// Set max_attempts = 1 to disable retrying.
  RetryPolicy retry;
  /// Logger for reconnect events (must outlive the client). nullptr
  /// means obs::Logger::Disabled().
  obs::Logger* logger = nullptr;
  /// Propagate a trace context on every request: each frame carries a
  /// fresh client-generated trace id with the sampled bit set, and the
  /// server returns its lifecycle span tree on the response (see
  /// Client::last_trace()).
  bool trace = false;
};

/// The server-returned trace attached to the most recently received
/// response (see Client::last_trace()).
struct RpcTrace {
  /// Correlation id the response carried; zero when the last response
  /// had no trace context.
  obs::TraceId trace_id;
  /// True when the server sampled the request and returned spans.
  bool sampled = false;
  /// The server's lifecycle span tree, start times rebased to zero.
  /// Rebuild a renderable tree with obs::Trace::AppendSpan.
  std::vector<obs::Trace::Span> spans;
};

/// Blocking client for the authidx wire protocol (docs/PROTOCOL.md).
///
/// The high-level calls (Ping/Query/Add/Flush/Stats) are synchronous
/// request/response: they connect lazily, and on a transient failure —
/// dropped connection, I/O timeout, or a server-side RETRYABLE_BUSY
/// shed — they reconnect and retry under the ClientOptions::retry
/// backoff policy before giving up. Permanent errors (bad query,
/// corruption, degraded storage) return immediately.
///
/// Retry safety: ADD mutates the catalog and is not idempotent, so it
/// is only retried when the failed attempt provably never executed —
/// a connect/send failure (the server can't have seen a complete
/// CRC-valid frame) or a RETRYABLE_BUSY shed (rejected before
/// execution). A failure after the request was fully sent (e.g. a
/// receive timeout) is ambiguous — the server may have ingested the
/// batch and only the response was lost — and is returned to the
/// caller unretried rather than risking duplicate entries. The
/// read-only calls and the idempotent FLUSH retry on any transient
/// failure.
///
/// The raw frame layer (SendRequest/ReceiveResponse) is for pipelining:
/// issue several requests back-to-back, then collect responses and
/// match them by request id. No retrying happens at that layer.
///
/// Not thread-safe: one Client per thread (the server handles many
/// connections; see bench/bench_server.cc for the multi-client shape).
class Client {
 public:
  /// Client for `options.host:options.port`; does not connect yet.
  explicit Client(ClientOptions options);

  /// Closes the connection if open.
  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Explicitly establishes the connection (the high-level calls do
  /// this lazily; Connect() is for surfacing setup errors early).
  Status Connect();

  /// Drops the connection; the next call reconnects.
  void Close();

  /// True while a connection is established.
  bool connected() const { return fd_ >= 0; }

  /// Liveness round-trip.
  Status Ping();

  /// Runs a query string on the server (authidx query grammar) and
  /// returns the rendered hits.
  Result<WireQueryResult> Query(std::string_view query_text);

  /// Ingests a batch of TSV entry lines; returns the number added.
  Result<uint64_t> Add(const std::vector<std::string>& tsv_lines);

  /// Asks the server to persist pending writes.
  Status Flush();

  /// Fetches catalog size counters.
  Result<WireStats> Stats();

  /// Raw layer: sends one request frame without waiting for the
  /// response; `*request_id` receives the frame's correlation id. With
  /// ClientOptions::trace set, the frame carries a fresh trace
  /// context, whose id `*trace_id` (optional) receives — the handle
  /// for matching pipelined responses to their own trace. The caller
  /// must be connected (see Connect()).
  Status SendRequest(Opcode opcode, std::string_view payload,
                     uint64_t* request_id,
                     obs::TraceId* trace_id = nullptr);

  /// Raw layer: blocks for the next response frame (any request id).
  /// `*request_id` receives the echoed correlation id. When the
  /// response carries a trace context it is captured into
  /// last_trace(), which is reset otherwise.
  Status ReceiveResponse(uint64_t* request_id, ResponsePayload* response);

  /// Raw layer: blocks for the next frame of *any* opcode, without
  /// interpreting it. For replication followers consuming the
  /// REPL_RECORDS / REPL_HEARTBEAT / REPL_SNAPSHOT stream after a
  /// REPL_SUBSCRIBE. `*payload` is copied out of the read buffer.
  Status ReceiveStreamFrame(FrameHeader* header, std::string* payload);

  /// The endpoint the client currently targets, as "host:port" (index 0
  /// is the primary; reads may have rotated onto a replica).
  std::string current_endpoint() const;

  /// The trace returned on the most recently received response (empty
  /// trace id when that response carried none).
  const RpcTrace& last_trace() const { return last_trace_; }

 private:
  // One connect + send + receive pass; transient failures drop the
  // connection so the retry wrapper reconnects. `*maybe_executed` is
  // set when the failure can no longer prove the server did not
  // execute the request: the whole frame was handed to the kernel and
  // the response was not a RETRYABLE_BUSY shed.
  Status CallOnce(Opcode opcode, std::string_view payload,
                  ResponsePayload* response, bool* maybe_executed);

  // CallOnce under the RetryPolicy; fills `*response` on success.
  // Non-idempotent opcodes (ADD) are not retried once an attempt
  // reports maybe_executed (see the class comment). Read-only opcodes
  // rotate endpoints between transient failures; mutations are pinned
  // to the primary. Arms the per-call deadline.
  Status Call(Opcode opcode, std::string_view payload,
              ResponsePayload* response);

  // Re-applies SO_SNDTIMEO/SO_RCVTIMEO: io_timeout_ms clamped to
  // whatever remains of the armed deadline.
  void ApplyIoTimeouts();

  // Nanoseconds to the armed deadline; UINT64_MAX when none is armed.
  uint64_t RemainingDeadlineNs() const;

  struct Endpoint {
    std::string host;
    int port = 0;
  };

  ClientOptions options_;
  obs::Logger* log_;  // Never null (Logger::Disabled()).
  Random rng_;
  // endpoints_[0] is the primary (options.host:port); the rest parse
  // from options.replicas.
  std::vector<Endpoint> endpoints_;
  size_t current_endpoint_ = 0;
  // Absolute monotonic deadline for the in-flight high-level call; 0
  // when disarmed (no ClientOptions::deadline_ms or raw-layer use).
  uint64_t deadline_at_ns_ = 0;
  int fd_ = -1;
  uint64_t next_request_id_ = 1;
  std::string read_buffer_;
  RpcTrace last_trace_;
};

}  // namespace authidx::net

#endif  // AUTHIDX_NET_CLIENT_H_
