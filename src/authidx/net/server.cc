#include "authidx/net/server.h"

#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <utility>

#include "authidx/common/coding.h"
#include "authidx/common/env.h"
#include "authidx/common/strings.h"
#include "authidx/parse/tsv.h"

namespace authidx::net {

namespace {

// Writes all of `data`, retrying short writes and EINTR. The socket is
// blocking with SO_SNDTIMEO, so a stalled peer fails the write after
// the timeout instead of wedging the calling thread. MSG_NOSIGNAL: a
// closed peer must yield EPIPE, not a process-killing SIGPIPE.
bool WriteAll(int fd, std::string_view data) {
  size_t off = 0;
  while (off < data.size()) {
    ssize_t n =
        ::send(fd, data.data() + off, data.size() - off, MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) {
        continue;
      }
      return false;  // Timeout, EPIPE, reset: the connection is gone.
    }
    off += static_cast<size_t>(n);
  }
  return true;
}

Status SetNonBlocking(int fd) {
  int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) != 0) {
    return Status::IOError("fcntl O_NONBLOCK: " + ErrnoMessage(errno));
  }
  return Status::OK();
}

// Dense index of a request opcode in the per-opcode instrument arrays
// (kOpcodeTable order); -1 for RESPONSE and unassigned values.
int OpIndex(Opcode opcode) {
  switch (opcode) {
    case Opcode::kPing:
      return 0;
    case Opcode::kQuery:
      return 1;
    case Opcode::kAdd:
      return 2;
    case Opcode::kFlush:
      return 3;
    case Opcode::kStats:
      return 4;
    case Opcode::kReplSubscribe:
      return 5;
    default:
      return -1;
  }
}

}  // namespace

// One accepted connection. The fd is owned here and closed by the
// destructor, which runs when the last reference (event-loop map or
// in-flight worker task) drops — so a worker finishing a response can
// never write into a recycled descriptor.
struct Server::Connection {
  explicit Connection(int fd_in) : fd(fd_in) {}
  ~Connection() {
    if (fd >= 0) {
      ::close(fd);
    }
  }
  Connection(const Connection&) = delete;
  Connection& operator=(const Connection&) = delete;

  const int fd;
  // Bytes read but not yet parsed into frames (event loop only).
  std::string read_buffer;
  // Serializes whole-frame response writes: workers answer pipelined
  // requests out of order, and interleaved partial frames would corrupt
  // the stream.
  Mutex write_mu;
  // Set on write failure or protocol error; later writes are skipped.
  std::atomic<bool> closed{false};
  // Requests parsed but not yet answered (the max_pipeline limit).
  std::atomic<size_t> in_flight{0};
  // Precomputed shed/error replies queued but not yet written; bounds
  // the control queue per connection (see Server::EnqueueControl).
  std::atomic<size_t> pending_control{0};
};

// One replication subscriber (a follower that sent REPL_SUBSCRIBE).
// Membership in Server::subscribers_ is guarded by feeder_mu_; the
// mutable cursor and snapshot state are touched only by the feeder
// thread once `active` is set (the registering worker owns them before
// that). `pin_wal` crosses threads (feeder advances it, any registrar
// reads it for the pin computation), hence atomic.
struct Server::Subscriber {
  std::shared_ptr<Connection> conn;
  // REPL_SUBSCRIBE correlation id, echoed on every stream frame.
  uint64_t request_id = 0;
  // Next unread WAL byte to ship (feeder thread only once active).
  storage::WalPosition pos;
  // Snapshot bootstrap: pairs still to stream before records start.
  std::unique_ptr<storage::Iterator> snap_it;
  bool snapshot_pending = false;
  // Oldest WAL this subscriber still needs; feeds the engine pin.
  std::atomic<uint64_t> pin_wal{UINT64_MAX};
  // Set once the ack RESPONSE is on the wire; the feeder skips
  // inactive subscribers (their stream must not precede the ack).
  std::atomic<bool> active{false};
  // When this subscriber last got a heartbeat (0 = never).
  uint64_t last_heartbeat_ns = 0;
};

Server::Server(core::AuthorIndex* catalog, ServerOptions options)
    : catalog_(catalog),
      options_(std::move(options)),
      sampler_(options_.trace_sample_every),
      trace_store_(options_.trace_store_per_bucket),
      trace_rng_(obs::MonotonicNowNs() | 1) {
  if (options_.metrics != nullptr) {
    metrics_ = options_.metrics;
  } else {
    owned_metrics_ = std::make_unique<obs::MetricsRegistry>();
    metrics_ = owned_metrics_.get();
  }
  log_ = options_.logger != nullptr ? options_.logger
                                    : obs::Logger::Disabled();
  connections_total_ = metrics_->RegisterCounter(
      "authidx_server_connections_total",
      "Connections accepted since the server started");
  active_connections_ = metrics_->RegisterGauge(
      "authidx_server_active_connections",
      "Connections currently registered with the event loop");
  rejected_connections_total_ = metrics_->RegisterCounter(
      "authidx_server_rejected_connections_total",
      "Connections closed at accept because max_connections was reached");
  requests_total_ = metrics_->RegisterCounter(
      "authidx_server_requests_total",
      "Requests executed by the worker pool (any outcome)");
  // Labeled per-opcode views registered right after their unlabeled
  // aggregate so metrics_text groups each family under one HELP/TYPE.
  for (size_t i = 0; i < kNumOps; ++i) {
    op_requests_total_[i] = metrics_->RegisterCounter(
        std::string("authidx_server_requests_total{op=\"") +
            kOpcodeTable[i].name + "\"}",
        "Requests executed by the worker pool (any outcome)");
  }
  errors_total_ = metrics_->RegisterCounter(
      "authidx_server_errors_total",
      "Requests answered with a non-OK wire status");
  for (size_t i = 0; i < kNumOps; ++i) {
    op_errors_total_[i] = metrics_->RegisterCounter(
        std::string("authidx_server_errors_total{op=\"") +
            kOpcodeTable[i].name + "\"}",
        "Requests answered with a non-OK wire status");
  }
  shed_requests_total_ = metrics_->RegisterCounter(
      "authidx_shed_requests_total",
      "Requests shed with RETRYABLE_BUSY by admission control");
  bad_frames_total_ = metrics_->RegisterCounter(
      "authidx_server_bad_frames_total",
      "Frames rejected for length/version/CRC violations");
  truncated_results_total_ = metrics_->RegisterCounter(
      "authidx_server_truncated_results_total",
      "QUERY responses whose hit page was cut to fit max_frame_bytes");
  queue_depth_ = metrics_->RegisterGauge(
      "authidx_server_queue_depth",
      "Requests waiting in the worker queue");
  request_ns_ = metrics_->RegisterLatencyHistogram(
      "authidx_server_request_duration_ns",
      "Server-side request latency from dequeue to response written");
  for (size_t i = 0; i < kNumOps; ++i) {
    op_request_ns_[i] = metrics_->RegisterLatencyHistogram(
        std::string("authidx_server_request_duration_ns{op=\"") +
            kOpcodeTable[i].name + "\"}",
        "Server-side request latency from dequeue to response written");
  }
  queue_wait_ns_ = metrics_->RegisterLatencyHistogram(
      "authidx_server_queue_wait_ns",
      "Time a request spent in the worker queue before execution");
  execute_ns_ = metrics_->RegisterLatencyHistogram(
      "authidx_server_execute_ns",
      "Time a worker spent executing a request (excluding queue and "
      "response write)");
  bytes_in_total_ = metrics_->RegisterCounter(
      "authidx_server_bytes_in_total", "Bytes read from clients");
  bytes_out_total_ = metrics_->RegisterCounter(
      "authidx_server_bytes_out_total", "Bytes written to clients");
  repl_records_shipped_total_ = metrics_->RegisterCounter(
      "authidx_repl_records_shipped_total",
      "WAL records shipped to replication subscribers");
  repl_snapshot_pairs_shipped_total_ = metrics_->RegisterCounter(
      "authidx_repl_snapshot_pairs_shipped_total",
      "Snapshot key/value pairs shipped to bootstrapping subscribers");
  repl_subscribers_ = metrics_->RegisterGauge(
      "authidx_repl_subscribers",
      "Replication subscribers currently registered");
}

Server::~Server() { Stop(); }

Status Server::Start() {
  if (running_.load(std::memory_order_acquire)) {
    return Status::FailedPrecondition("server already running");
  }
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    return Status::IOError("socket: " + ErrnoMessage(errno));
  }
  auto fail = [this](Status status) {
    Stop();
    return status;
  };
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  AUTHIDX_RETURN_NOT_OK(SetNonBlocking(listen_fd_));

  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(options_.port));
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    return fail(Status::IOError("bind port " +
                                std::to_string(options_.port) + ": " +
                                ErrnoMessage(errno)));
  }
  if (::listen(listen_fd_, 128) != 0) {
    return fail(Status::IOError("listen: " + ErrnoMessage(errno)));
  }
  socklen_t addr_len = sizeof(addr);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
                    &addr_len) != 0) {
    return fail(Status::IOError("getsockname: " + ErrnoMessage(errno)));
  }
  port_ = static_cast<int>(ntohs(addr.sin_port));

  epoll_fd_ = ::epoll_create1(0);
  if (epoll_fd_ < 0) {
    return fail(Status::IOError("epoll_create1: " + ErrnoMessage(errno)));
  }
  wake_fd_ = ::eventfd(0, EFD_NONBLOCK);
  if (wake_fd_ < 0) {
    return fail(Status::IOError("eventfd: " + ErrnoMessage(errno)));
  }
  epoll_event ev;
  std::memset(&ev, 0, sizeof(ev));
  ev.events = EPOLLIN;
  ev.data.fd = listen_fd_;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, listen_fd_, &ev) != 0) {
    return fail(Status::IOError("epoll_ctl listen: " +
                                ErrnoMessage(errno)));
  }
  ev.data.fd = wake_fd_;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_fd_, &ev) != 0) {
    return fail(Status::IOError("epoll_ctl wake: " + ErrnoMessage(errno)));
  }

  {
    MutexLock lock(queue_mu_);
    stopping_ = false;
  }
  running_.store(true, std::memory_order_release);
  event_thread_ = std::thread([this] { EventLoop(); });
  int workers = options_.num_workers > 0 ? options_.num_workers : 1;
  workers_.reserve(static_cast<size_t>(workers));
  for (int i = 0; i < workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
  // The replication feeder only exists on a storage-backed primary:
  // replicas must not cascade, and an in-memory catalog has no WAL.
  if (!options_.replica && !catalog_->is_replica() &&
      catalog_->storage_engine() != nullptr) {
    {
      MutexLock lock(feeder_mu_);
      feeder_stop_ = false;
    }
    feeder_thread_ = std::thread([this] { FeederLoop(); });
  }
  log_->Log(obs::LogLevel::kInfo, "server_start",
            {{"port", static_cast<uint64_t>(port_)},
             {"workers", static_cast<uint64_t>(workers)}});
  return Status::OK();
}

void Server::Stop() {
  // A fully stopped server has no thread, workers, or fds left; a
  // second Stop() (e.g. from the destructor after an explicit call)
  // must not touch metrics or logs the caller may have torn down.
  if (!event_thread_.joinable() && workers_.empty() &&
      !feeder_thread_.joinable() && listen_fd_ < 0 && epoll_fd_ < 0 &&
      wake_fd_ < 0) {
    return;
  }
  if (running_.exchange(false, std::memory_order_acq_rel)) {
    uint64_t one = 1;
    (void)!::write(wake_fd_, &one, sizeof(one));
  }
  if (event_thread_.joinable()) {
    event_thread_.join();
  }
  {
    MutexLock lock(feeder_mu_);
    feeder_stop_ = true;
  }
  feeder_cv_.NotifyAll();
  if (feeder_thread_.joinable()) {
    feeder_thread_.join();
  }
  {
    MutexLock lock(queue_mu_);
    stopping_ = true;
  }
  queue_cv_.NotifyAll();
  for (std::thread& worker : workers_) {
    if (worker.joinable()) {
      worker.join();
    }
  }
  bool was_started = !workers_.empty();
  workers_.clear();
  {
    // After the workers are gone nothing can register a subscriber
    // anymore: drop them all and release the WAL pin so the engine
    // (which outlives the server) resumes normal garbage collection.
    MutexLock lock(feeder_mu_);
    subscribers_.clear();
    UpdateWalPinLocked();
    repl_subscribers_->Set(0);
  }
  {
    MutexLock lock(conns_mu_);
    conns_.clear();
    active_connections_->Set(0);
  }
  for (int* fd : {&listen_fd_, &epoll_fd_, &wake_fd_}) {
    if (*fd >= 0) {
      ::close(*fd);
      *fd = -1;
    }
  }
  if (was_started) {
    log_->Log(obs::LogLevel::kInfo, "server_stop",
              {{"requests", requests_total_->Value()},
               {"shed", shed_requests_total_->Value()}});
  }
}

void Server::EventLoop() {
  while (running_.load(std::memory_order_acquire)) {
    epoll_event events[64];
    int n = ::epoll_wait(epoll_fd_, events, 64, -1);
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      return;
    }
    for (int i = 0; i < n; ++i) {
      int fd = events[i].data.fd;
      if (fd == wake_fd_) {
        uint64_t drained = 0;
        (void)!::read(wake_fd_, &drained, sizeof(drained));
        continue;  // The loop condition re-checks running_.
      }
      if (fd == listen_fd_) {
        AcceptPending();
        continue;
      }
      std::shared_ptr<Connection> conn;
      {
        MutexLock lock(conns_mu_);
        auto it = conns_.find(fd);
        if (it != conns_.end()) {
          conn = it->second;
        }
      }
      if (conn == nullptr) {
        continue;  // Unregistered by an earlier event this batch.
      }
      if ((events[i].events & (EPOLLHUP | EPOLLERR)) != 0) {
        Unregister(conn);
        continue;
      }
      if ((events[i].events & EPOLLIN) != 0) {
        (void)HandleReadable(conn);
      }
    }
  }
}

void Server::AcceptPending() {
  while (true) {
    int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      return;  // EAGAIN: backlog drained (or transient accept error).
    }
    connections_total_->Inc();
    size_t live = 0;
    {
      MutexLock lock(conns_mu_);
      live = conns_.size();
    }
    if (live >= options_.max_connections) {
      rejected_connections_total_->Inc();
      ::close(fd);
      continue;
    }
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    // The accepted fd stays *blocking*: the event loop issues exactly
    // one read() per readiness event, and workers write with a bounded
    // SO_SNDTIMEO so a stalled reader drops the connection instead of
    // holding a worker thread hostage.
    timeval timeout;
    timeout.tv_sec = options_.send_timeout_ms / 1000;
    timeout.tv_usec = (options_.send_timeout_ms % 1000) * 1000;
    ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &timeout, sizeof(timeout));
    ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &timeout, sizeof(timeout));

    auto conn = std::make_shared<Connection>(fd);
    {
      MutexLock lock(conns_mu_);
      conns_.emplace(fd, conn);
      active_connections_->Set(static_cast<int64_t>(conns_.size()));
    }
    epoll_event ev;
    std::memset(&ev, 0, sizeof(ev));
    ev.events = EPOLLIN;
    ev.data.fd = fd;
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) != 0) {
      Unregister(conn);
    }
  }
}

bool Server::HandleReadable(const std::shared_ptr<Connection>& conn) {
  uint64_t read_ns = obs::MonotonicNowNs();
  char buf[65536];
  ssize_t n = ::read(conn->fd, buf, sizeof(buf));
  if (n == 0) {
    Unregister(conn);
    return false;
  }
  if (n < 0) {
    if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) {
      return true;
    }
    Unregister(conn);
    return false;
  }
  uint64_t read_done_ns = obs::MonotonicNowNs();
  bytes_in_total_->Inc(static_cast<uint64_t>(n));
  conn->read_buffer.append(buf, static_cast<size_t>(n));

  while (true) {
    DecodedFrame frame;
    Status error;
    DecodeOutcome outcome = DecodeFrame(conn->read_buffer,
                                        options_.max_frame_bytes, &frame,
                                        &error);
    if (outcome == DecodeOutcome::kNeedMore) {
      return true;
    }
    if (outcome == DecodeOutcome::kError) {
      // The stream cannot be resynchronized: answer BAD_FRAME
      // (request_id 0, best effort) and drop the connection. A worker
      // writes the reply — never this thread — so the connection is
      // only quarantined here; the worker shuts it down after the
      // write.
      bad_frames_total_->Inc();
      log_->Log(obs::LogLevel::kWarn, "bad_frame",
                {{"error", error.message()}});
      ResponsePayload response;
      response.status = WireStatus::kBadFrame;
      response.message = error.message();
      Quarantine(conn);
      EnqueueControl(conn, 0, std::move(response), /*close_after=*/true);
      return false;
    }
    FrameMeta meta;
    meta.read_ns = read_ns;
    meta.read_done_ns = read_done_ns;
    meta.decoded_ns = obs::MonotonicNowNs();
    std::string_view payload = frame.payload;
    if ((frame.header.flags & kFlagTraceContext) != 0) {
      Status ts = DecodeTraceContext(&payload, &meta.trace_ctx);
      if (!ts.ok()) {
        // CRC-valid but the advertised extension is malformed; the
        // payload boundary is untrustworthy, so treat it like a
        // framing error: answer BAD_FRAME and drop the connection.
        bad_frames_total_->Inc();
        log_->Log(obs::LogLevel::kWarn, "bad_frame",
                  {{"error", ts.message()}});
        ResponsePayload response;
        response.status = WireStatus::kBadFrame;
        response.message = ts.message();
        Quarantine(conn);
        EnqueueControl(conn, frame.header.request_id, std::move(response),
                       /*close_after=*/true);
        return false;
      }
      meta.traced = true;
    }
    if (frame.header.opcode == Opcode::kResponse ||
        !IsKnownOpcode(static_cast<uint8_t>(frame.header.opcode))) {
      // CRC-valid, so the stream stays in sync: answer and keep going.
      ResponsePayload response;
      response.status = WireStatus::kUnknownOpcode;
      response.message =
          "opcode " +
          std::to_string(static_cast<int>(frame.header.opcode)) +
          " is not a request";
      if (!EnqueueControl(conn, frame.header.request_id,
                          std::move(response), /*close_after=*/false)) {
        return false;
      }
    } else if (!EnqueueOrShed(conn, frame.header, payload, meta)) {
      return false;
    }
    conn->read_buffer.erase(0, frame.frame_bytes);
  }
}

bool Server::EnqueueOrShed(const std::shared_ptr<Connection>& conn,
                           const FrameHeader& header,
                           std::string_view payload,
                           const FrameMeta& meta) {
  const char* shed_reason = nullptr;
  if (conn->in_flight.load(std::memory_order_relaxed) >=
      options_.max_pipeline) {
    shed_reason = "per-connection pipeline limit reached";
  } else {
    MutexLock lock(queue_mu_);
    if (queue_.size() >= options_.queue_limit) {
      shed_reason = "worker queue full";
    } else {
      conn->in_flight.fetch_add(1, std::memory_order_relaxed);
      Task task;
      task.conn = conn;
      task.header = header;
      task.payload = std::string(payload);
      task.meta = meta;
      // A client-supplied trace context owns the sampling decision;
      // otherwise the head sampler takes one in every
      // trace_sample_every. Sample() and the id check are
      // allocation-free, so the unsampled hot path stays clean.
      task.sampled =
          meta.traced ? meta.trace_ctx.sampled : sampler_.Sample();
      if (task.sampled && task.meta.trace_ctx.trace_id.IsZero()) {
        task.meta.trace_ctx.trace_id = GenerateTraceId();
      }
      task.enqueue_ns = obs::MonotonicNowNs();
      queue_.push_back(std::move(task));
      queue_depth_->Set(static_cast<int64_t>(queue_.size()));
      queue_cv_.NotifyOne();
    }
  }
  if (shed_reason != nullptr) {
    shed_requests_total_->Inc();
    ResponsePayload response;
    response.status = WireStatus::kRetryableBusy;
    response.message = shed_reason;
    return EnqueueControl(conn, header.request_id, std::move(response),
                          /*close_after=*/false);
  }
  return true;
}

bool Server::EnqueueControl(const std::shared_ptr<Connection>& conn,
                            uint64_t request_id, ResponsePayload response,
                            bool close_after) {
  // Writing from the event loop would let one peer that stops reading
  // stall every connection for up to send_timeout_ms — precisely under
  // overload, when sheds are generated. Hand the reply to a worker
  // instead, bounded per connection: the bound is generous (a burst
  // pipelined past max_pipeline legitimately pends that many shed
  // replies, and every CRC-valid request is promised a response), but
  // a peer far beyond it is flooding without reading — writing more at
  // it is pointless, so drop it.
  if (conn->pending_control.fetch_add(1, std::memory_order_relaxed) >=
      options_.max_pipeline + options_.queue_limit) {
    conn->pending_control.fetch_sub(1, std::memory_order_relaxed);
    Unregister(conn);
    return false;
  }
  Task task;
  task.conn = conn;
  task.header.request_id = request_id;
  task.has_response = true;
  task.response = std::move(response);
  task.close_after = close_after;
  {
    MutexLock lock(queue_mu_);
    control_queue_.push_back(std::move(task));
    queue_cv_.NotifyOne();
  }
  return true;
}

void Server::WorkerLoop() {
  while (true) {
    Task task;
    queue_mu_.Lock();
    while (queue_.empty() && control_queue_.empty() && !stopping_) {
      queue_cv_.Wait(queue_mu_);
    }
    if (!control_queue_.empty()) {
      // Control replies jump the queue: they are already built, and
      // under overload (when they are generated) queue_ is full.
      task = std::move(control_queue_.front());
      control_queue_.pop_front();
    } else if (!queue_.empty()) {
      task = std::move(queue_.front());
      queue_.pop_front();
      queue_depth_->Set(static_cast<int64_t>(queue_.size()));
    } else {
      queue_mu_.Unlock();
      return;  // stopping_ and both queues drained: exit.
    }
    queue_mu_.Unlock();
    ExecuteTask(task);
  }
}

void Server::ExecuteTask(const Task& task) {
  if (task.has_response) {
    // Precomputed shed/error reply: write it, and for BAD_FRAME shut
    // the (already quarantined) connection down afterwards. Not a
    // catalog request, so requests_total_/request_ns_ stay untouched.
    WriteResponse(task.conn, task.header.request_id, task.response, {});
    if (task.close_after) {
      Unregister(task.conn);
    }
    task.conn->pending_control.fetch_sub(1, std::memory_order_relaxed);
    return;
  }
  uint64_t dequeue_ns = obs::MonotonicNowNs();
  uint64_t queue_wait_ns =
      dequeue_ns >= task.enqueue_ns ? dequeue_ns - task.enqueue_ns : 0;
  queue_wait_ns_->Record(queue_wait_ns);
  int op = OpIndex(task.header.opcode);
  if (op >= 0) {
    op_queue_wait_sum_ns_[op].fetch_add(queue_wait_ns,
                                        std::memory_order_relaxed);
  }
  if (options_.handler_delay_ms_for_test > 0) {
    std::this_thread::sleep_for(
        std::chrono::milliseconds(options_.handler_delay_ms_for_test));
  }
  // The engine appends its spans here for sampled requests; default
  // construction allocates nothing, so unsampled requests pay only the
  // null check.
  obs::Trace engine_trace;
  engine_trace.set_trace_id(task.meta.trace_ctx.trace_id);
  uint64_t exec_start_ns = obs::MonotonicNowNs();
  std::shared_ptr<Subscriber> pending_sub;
  ResponsePayload response = HandleRequest(
      task, task.sampled ? &engine_trace : nullptr, &pending_sub);
  uint64_t exec_ns = obs::MonotonicNowNs() - exec_start_ns;
  execute_ns_->Record(exec_ns);
  // Count before writing: once the response is on the wire a client
  // may immediately scrape /metrics and must see this request.
  requests_total_->Inc();
  if (op >= 0) {
    op_execute_sum_ns_[op].fetch_add(exec_ns, std::memory_order_relaxed);
    op_requests_total_[op]->Inc();
    if (response.status != WireStatus::kOk) {
      errors_total_->Inc();
      op_errors_total_[op]->Inc();
    }
  }

  // Sampled requests get the lifecycle span tree assembled; it ships
  // back ahead of the response payload only when the request carried
  // trace context (head sampling is a server-local decision — untraced
  // clients never see trace bytes). Traced-but-unsampled requests get
  // their context echoed with an empty span list so the client can
  // still correlate. Untraced, unsampled requests skip all of this —
  // no allocation, no encoding.
  std::string trace_prefix;
  obs::Trace tree;
  size_t root_index = 0;
  if (task.sampled) {
    tree.set_trace_id(task.meta.trace_ctx.trace_id);
    std::string root_name =
        "rpc/" + std::string(OpcodeName(task.header.opcode));
    root_index = tree.AppendSpan(root_name, 0, task.meta.read_ns, 0);
    tree.AppendSpan("socket_read", 1, task.meta.read_ns,
                    task.meta.read_done_ns - task.meta.read_ns);
    tree.AppendSpan("decode", 1, task.meta.read_done_ns,
                    task.meta.decoded_ns - task.meta.read_done_ns);
    tree.AppendSpan("queue_wait", 1, task.enqueue_ns, queue_wait_ns);
    tree.AppendSpan("execute", 1, exec_start_ns, exec_ns);
    for (const obs::Trace::Span& span : engine_trace.spans()) {
      tree.AppendSpan(span.name, span.depth + 2, span.start_ns,
                      span.duration_ns);
    }
    // The wire copy of the tree necessarily ends here: the encode
    // and send spans cannot be inside the bytes they produce. The
    // stored /tracez copy is finalized with them after the write.
    tree.EndSpan(root_index, obs::MonotonicNowNs() - task.meta.read_ns);
  }
  if (task.meta.traced) {
    TraceContext out_ctx = task.meta.trace_ctx;
    out_ctx.sampled = task.sampled;
    uint64_t encode_start_ns = obs::MonotonicNowNs();
    EncodeTraceContext(out_ctx, &trace_prefix);
    EncodeTraceSpans(tree.spans(), &trace_prefix);
    if (task.sampled) {
      tree.AppendSpan("encode", 1, encode_start_ns,
                      obs::MonotonicNowNs() - encode_start_ns);
    }
  }

  uint64_t send_start_ns = obs::MonotonicNowNs();
  WriteResponse(task.conn, task.header.request_id, response, trace_prefix);
  if (pending_sub != nullptr) {
    // The subscribe ack is on the wire (or the connection is poisoned,
    // which the feeder notices); the stream may start now.
    ActivateSubscriber(pending_sub);
  }
  uint64_t send_end_ns = obs::MonotonicNowNs();
  request_ns_->Record(send_end_ns - dequeue_ns);
  if (op >= 0) {
    op_request_ns_[op]->Record(send_end_ns - dequeue_ns);
  }
  task.conn->in_flight.fetch_sub(1, std::memory_order_relaxed);

  // Retain the trace when sampled — and always when the whole RPC
  // crossed the engine's slow-query threshold, so the tail is captured
  // even at a 1-in-N sampling rate (the skeleton built here has no
  // engine spans; the allocation only happens on the already-slow
  // path).
  uint64_t total_ns = send_end_ns - task.meta.read_ns;
  uint64_t slow_ns = catalog_->slow_query_threshold_ns();
  bool slow = slow_ns > 0 && total_ns >= slow_ns;
  if (task.sampled || slow) {
    obs::TraceId id = task.meta.trace_ctx.trace_id;
    if (id.IsZero()) {
      id = GenerateTraceId();
    }
    if (!task.sampled) {
      tree.set_trace_id(id);
      std::string root_name =
          "rpc/" + std::string(OpcodeName(task.header.opcode));
      root_index = tree.AppendSpan(root_name, 0, task.meta.read_ns, 0);
      tree.AppendSpan("socket_read", 1, task.meta.read_ns,
                      task.meta.read_done_ns - task.meta.read_ns);
      tree.AppendSpan("decode", 1, task.meta.read_done_ns,
                      task.meta.decoded_ns - task.meta.read_done_ns);
      tree.AppendSpan("queue_wait", 1, task.enqueue_ns, queue_wait_ns);
      tree.AppendSpan("execute", 1, exec_start_ns, exec_ns);
    }
    tree.AppendSpan("send", 1, send_start_ns,
                    send_end_ns - send_start_ns);
    tree.EndSpan(root_index, total_ns);
    obs::StoredTrace stored;
    stored.id = id;
    stored.unix_ms = obs::WallUnixMillis();
    stored.opcode = std::string(OpcodeName(task.header.opcode));
    stored.duration_ns = total_ns;
    stored.spans = tree.spans();
    trace_store_.Record(std::move(stored));
    std::string id_hex = id.ToHex();
    log_->Log(obs::LogLevel::kInfo, "rpc",
              {{"trace_id", id_hex},
               {"op", OpcodeName(task.header.opcode)},
               {"status", WireStatusName(response.status)},
               {"duration_ns", total_ns},
               {"queue_wait_ns", queue_wait_ns},
               {"execute_ns", exec_ns},
               {"sampled", task.sampled}});
  }
}

ResponsePayload Server::HandleRequest(
    const Task& task, obs::Trace* trace,
    std::shared_ptr<Subscriber>* pending_sub) {
  const FrameHeader& header = task.header;
  std::string_view payload = task.payload;
  ResponsePayload response;
  auto fail = [&response](const Status& status) {
    response.status = WireStatusFromStatus(status);
    response.message = status.ToString();
  };
  switch (header.opcode) {
    case Opcode::kPing:
      break;
    case Opcode::kQuery: {
      std::string_view query_text;
      Status s = DecodeQueryRequest(payload, &query_text);
      if (!s.ok()) {
        fail(s);
        break;
      }
      Result<query::QueryResult> result =
          catalog_->SearchTraced(query_text, trace);
      if (!result.ok()) {
        fail(result.status());
        break;
      }
      WireQueryResult wire;
      wire.total_matches = result->total_matches;
      wire.plan = static_cast<uint8_t>(result->plan);
      wire.hits.reserve(result->hits.size());
      // Bound the encoded page so the response frame fits
      // max_frame_bytes: the caps are symmetric by convention, so a
      // frame this server would refuse to read, a default client
      // refuses too — it would report Corruption and drop the
      // connection. Budget = cap minus framing and worst-case fixed
      // response fields; per-hit cost is worst-case varints plus the
      // rendered strings. total_matches still reports every match. A
      // traced response also carries the trace-context prefix and the
      // lifecycle span tree ahead of the payload, so reserve room for
      // them too (span names are short; 1 KiB covers a deep tree).
      const size_t reserved =
          kFrameOverheadBytes + 32 +
          (task.meta.traced ? kTraceContextBytes + 1024 : 0);
      const size_t budget = options_.max_frame_bytes > reserved
                                ? options_.max_frame_bytes - reserved
                                : 0;
      size_t used = 0;
      bool page_truncated = false;
      for (const query::Hit& hit : result->hits) {
        // Entry pointers are stable across later ingests (append-only
        // deque), so reading them after Search returns is safe.
        const Entry* entry = catalog_->GetEntry(hit.id);
        if (entry == nullptr) {
          continue;
        }
        WireHit wire_hit;
        wire_hit.id = hit.id;
        wire_hit.score = hit.score;
        wire_hit.author = entry->author.ToIndexForm();
        wire_hit.title = entry->title;
        wire_hit.citation = entry->citation.ToString();
        size_t cost = 28 + wire_hit.author.size() +
                      wire_hit.title.size() + wire_hit.citation.size();
        if (used + cost > budget) {
          page_truncated = true;
          break;
        }
        used += cost;
        wire.hits.push_back(std::move(wire_hit));
      }
      if (page_truncated) {
        truncated_results_total_->Inc();
        std::string id_hex = task.meta.trace_ctx.trace_id.ToHex();
        log_->Log(obs::LogLevel::kWarn, "query_result_truncated",
                  {{"request_id", header.request_id},
                   {"trace_id", task.meta.trace_ctx.trace_id.IsZero()
                                    ? std::string_view()
                                    : std::string_view(id_hex)},
                   {"returned", static_cast<uint64_t>(wire.hits.size())},
                   {"total_matches", wire.total_matches}});
      }
      EncodeQueryResult(wire, &response.body);
      break;
    }
    case Opcode::kAdd: {
      if (options_.replica || catalog_->is_replica()) {
        response.status = WireStatus::kNotPrimary;
        response.message =
            "this node is a read replica; send mutations to the primary";
        break;
      }
      std::vector<std::string_view> lines;
      Status s = DecodeAddRequest(payload, &lines);
      if (!s.ok()) {
        fail(s);
        break;
      }
      std::vector<Entry> entries;
      entries.reserve(lines.size());
      for (std::string_view line : lines) {
        Result<Entry> entry = ParseTsvLine(line);
        if (!entry.ok()) {
          fail(entry.status());
          break;
        }
        entries.push_back(std::move(entry).value());
      }
      if (response.status != WireStatus::kOk) {
        break;
      }
      uint64_t added = entries.size();
      s = catalog_->AddAll(std::move(entries));
      if (!s.ok()) {
        fail(s);
        break;
      }
      PutVarint64(&response.body, added);
      KickFeeder();
      break;
    }
    case Opcode::kFlush: {
      Status s = catalog_->Flush();
      if (!s.ok()) {
        fail(s);
        break;
      }
      // A flush can switch WALs; wake the feeder so subscribers cross
      // the switch (and learn the new frontier) without waiting a tick.
      KickFeeder();
      break;
    }
    case Opcode::kStats: {
      WireStats stats;
      stats.entry_count = catalog_->entry_count();
      stats.group_count = catalog_->group_count();
      EncodeStats(stats, &response.body);
      break;
    }
    case Opcode::kReplSubscribe:
      response = HandleReplSubscribe(task, pending_sub);
      break;
    default:
      // Unknown opcodes are answered by the event loop before
      // enqueueing; this is unreachable but keeps the switch total.
      response.status = WireStatus::kUnknownOpcode;
      response.message = "unhandled opcode";
      break;
  }
  return response;
}

ResponsePayload Server::HandleReplSubscribe(
    const Task& task, std::shared_ptr<Subscriber>* pending_sub) {
  ResponsePayload response;
  if (options_.replica || catalog_->is_replica()) {
    response.status = WireStatus::kNotPrimary;
    response.message =
        "this node is a read replica; subscribe to the primary";
    return response;
  }
  storage::StorageEngine* engine = catalog_->storage_engine();
  if (engine == nullptr) {
    response.status = WireStatus::kFailedPrecondition;
    response.message =
        "this server fronts an in-memory catalog (no WAL to ship)";
    return response;
  }
  WirePosition wire_pos;
  Status s = DecodeReplSubscribe(task.payload, &wire_pos);
  if (!s.ok()) {
    response.status = WireStatusFromStatus(s);
    response.message = s.ToString();
    return response;
  }
  auto sub = std::make_shared<Subscriber>();
  sub->conn = task.conn;
  sub->request_id = task.header.request_id;
  storage::WalPosition pos{wire_pos.wal_number, wire_pos.offset};
  WireReplSubscribeAck ack;
  bool bootstrap = pos == storage::WalPosition{};
  if (!bootstrap) {
    sub->pos = pos;
    sub->pin_wal.store(pos.wal_number, std::memory_order_relaxed);
    RegisterSubscriber(sub);
    // Trial read under the pin: is the cursor still servable?
    // Corruption below the frontier is surfaced as-is. NOT_FOUND splits
    // two ways: a cursor at or behind the committed frontier sits on a
    // WAL that was flushed and garbage-collected (a primary restart
    // does this) — every record it needs is in the SSTs, so fall back
    // to a snapshot bootstrap, which is idempotent over whatever the
    // follower already holds. A cursor *ahead* of the frontier belongs
    // to some other store (or a primary restored from backup) and the
    // follower must reseed.
    storage::ReplicationSource source(engine);
    Result<storage::ReplicationBatch> trial =
        source.ReadBatch(pos, 1, options_.repl_max_batch_bytes);
    if (!trial.ok()) {
      RemoveSubscriber(sub);
      if (trial.status().code() == StatusCode::kNotFound &&
          !(engine->CommittedWalPosition() < pos)) {
        bootstrap = true;
      } else {
        response.status = WireStatusFromStatus(trial.status());
        response.message = trial.status().ToString();
        return response;
      }
    } else {
      ack.mode = 0;
      ack.start = wire_pos;
    }
  }
  if (bootstrap) {
    // Snapshot bootstrap. Ordering matters: pin the committed WAL
    // *before* registering, register *before* capturing the resume
    // point, and open the iterator *after* the capture — so every
    // record at or after `resume` is either in the snapshot or still on
    // a pinned WAL when record shipping starts.
    storage::WalPosition committed = engine->CommittedWalPosition();
    sub->pin_wal.store(committed.wal_number, std::memory_order_relaxed);
    RegisterSubscriber(sub);
    storage::WalPosition resume = engine->CommittedWalPosition();
    sub->pos = resume;
    sub->snap_it = engine->NewIterator();
    sub->snap_it->SeekToFirst();
    sub->snapshot_pending = true;
    ack.mode = 1;
    ack.start = {resume.wal_number, resume.offset};
  }
  EncodeReplSubscribeAck(ack, &response.body);
  *pending_sub = std::move(sub);
  return response;
}

void Server::RegisterSubscriber(const std::shared_ptr<Subscriber>& sub) {
  MutexLock lock(feeder_mu_);
  subscribers_.push_back(sub);
  UpdateWalPinLocked();
  repl_subscribers_->Set(static_cast<int64_t>(subscribers_.size()));
}

void Server::ActivateSubscriber(const std::shared_ptr<Subscriber>& sub) {
  sub->active.store(true, std::memory_order_release);
  // Best-effort kick; a notify the feeder misses between its pass and
  // its wait only delays the first frames by one heartbeat interval.
  feeder_cv_.NotifyAll();
}

void Server::RemoveSubscriber(const std::shared_ptr<Subscriber>& sub) {
  MutexLock lock(feeder_mu_);
  auto it = std::find(subscribers_.begin(), subscribers_.end(), sub);
  if (it != subscribers_.end()) {
    subscribers_.erase(it);
  }
  UpdateWalPinLocked();
  repl_subscribers_->Set(static_cast<int64_t>(subscribers_.size()));
}

void Server::KickFeeder() {
  MutexLock lock(feeder_mu_);
  if (!subscribers_.empty()) {
    feeder_cv_.NotifyAll();
  }
}

void Server::UpdateWalPinLocked() {
  storage::StorageEngine* engine = catalog_->storage_engine();
  if (engine == nullptr) {
    return;
  }
  uint64_t pin = UINT64_MAX;
  for (const std::shared_ptr<Subscriber>& sub : subscribers_) {
    pin = std::min(pin, sub->pin_wal.load(std::memory_order_relaxed));
  }
  engine->PinWalsFrom(pin);
}

void Server::FeederLoop() {
  storage::StorageEngine* engine = catalog_->storage_engine();
  storage::ReplicationSource source(engine);
  const uint64_t interval_us =
      options_.repl_heartbeat_interval_ms > 0
          ? static_cast<uint64_t>(options_.repl_heartbeat_interval_ms) * 1000
          : 1000;
  for (;;) {
    std::vector<std::shared_ptr<Subscriber>> subs;
    {
      MutexLock lock(feeder_mu_);
      if (feeder_stop_) {
        return;
      }
      subs = subscribers_;
    }
    std::vector<std::shared_ptr<Subscriber>> dead;
    for (const std::shared_ptr<Subscriber>& sub : subs) {
      if (!sub->active.load(std::memory_order_acquire)) {
        continue;
      }
      if (sub->conn->closed.load(std::memory_order_relaxed) ||
          !FeedSubscriber(sub, &source)) {
        dead.push_back(sub);
      }
    }
    for (const std::shared_ptr<Subscriber>& sub : dead) {
      RemoveSubscriber(sub);
      // Closing the connection tells the follower to reconnect (and,
      // if its cursor became unservable, to reseed).
      Unregister(sub->conn);
    }
    {
      MutexLock lock(feeder_mu_);
      if (feeder_stop_) {
        return;
      }
      feeder_cv_.WaitFor(feeder_mu_, interval_us);
      if (feeder_stop_) {
        return;
      }
    }
  }
}

bool Server::FeedSubscriber(const std::shared_ptr<Subscriber>& sub,
                            storage::ReplicationSource* source) {
  storage::StorageEngine* engine = catalog_->storage_engine();
  // Snapshot bootstrap: stream the pinned iterator in bounded chunks,
  // closing with an empty done-chunk carrying the resume position.
  while (sub->snapshot_pending) {
    WireReplSnapshot chunk;
    size_t chunk_bytes = 0;
    storage::Iterator* it = sub->snap_it.get();
    while (it->Valid() && chunk_bytes < options_.repl_snapshot_chunk_bytes) {
      chunk.pairs.emplace_back(std::string(it->key()),
                               std::string(it->value()));
      chunk_bytes += it->key().size() + it->value().size() + 16;
      it->Next();
    }
    if (!it->status().ok()) {
      log_->Log(obs::LogLevel::kWarn, "repl_snapshot_failed",
                {{"error", it->status().message()}});
      return false;
    }
    if (chunk.pairs.empty()) {
      chunk.done = 1;
      chunk.resume = {sub->pos.wal_number, sub->pos.offset};
    }
    size_t pair_count = chunk.pairs.size();
    std::string payload;
    EncodeReplSnapshot(chunk, &payload);
    if (!WriteStreamFrame(sub->conn, Opcode::kReplSnapshot,
                          sub->request_id, payload)) {
      return false;
    }
    repl_snapshot_pairs_shipped_total_->Inc(pair_count);
    if (chunk.done != 0) {
      sub->snapshot_pending = false;
      sub->snap_it.reset();
    }
  }

  // Ship committed records until this subscriber is caught up.
  bool advanced = false;
  for (;;) {
    Result<storage::ReplicationBatch> batch = source->ReadBatch(
        sub->pos, options_.repl_max_batch_records,
        options_.repl_max_batch_bytes);
    if (!batch.ok()) {
      log_->Log(obs::LogLevel::kWarn, "repl_feed_failed",
                {{"error", batch.status().message()},
                 {"wal", sub->pos.wal_number},
                 {"offset", sub->pos.offset}});
      return false;
    }
    if (batch->records.empty()) {
      break;
    }
    WireReplRecords wire;
    wire.end = {batch->end.wal_number, batch->end.offset};
    wire.committed = {batch->committed.wal_number,
                      batch->committed.offset};
    wire.records = std::move(batch->records);
    size_t record_count = wire.records.size();
    std::string payload;
    EncodeReplRecords(wire, &payload);
    if (!WriteStreamFrame(sub->conn, Opcode::kReplRecords,
                          sub->request_id, payload)) {
      return false;
    }
    repl_records_shipped_total_->Inc(record_count);
    sub->pos = batch->end;
    sub->pin_wal.store(sub->pos.wal_number, std::memory_order_relaxed);
    advanced = true;
  }
  if (advanced) {
    // The cursor may have crossed a WAL switch; let the engine release
    // files no subscriber needs anymore.
    MutexLock lock(feeder_mu_);
    UpdateWalPinLocked();
  }

  uint64_t now = obs::MonotonicNowNs();
  uint64_t interval_ns =
      static_cast<uint64_t>(options_.repl_heartbeat_interval_ms) * 1000000;
  if (sub->last_heartbeat_ns == 0 ||
      now - sub->last_heartbeat_ns >= interval_ns) {
    WireReplHeartbeat hb;
    storage::WalPosition committed = engine->CommittedWalPosition();
    hb.committed = {committed.wal_number, committed.offset};
    hb.degraded = engine->degraded() ? 1 : 0;
    std::string payload;
    EncodeReplHeartbeat(hb, &payload);
    if (!WriteStreamFrame(sub->conn, Opcode::kReplHeartbeat,
                          sub->request_id, payload)) {
      return false;
    }
    sub->last_heartbeat_ns = now;
  }
  return true;
}

bool Server::WriteStreamFrame(const std::shared_ptr<Connection>& conn,
                              Opcode opcode, uint64_t request_id,
                              std::string_view payload) {
  FrameHeader header;
  header.opcode = opcode;
  header.request_id = request_id;
  std::string frame;
  EncodeFrame(header, payload, &frame);

  MutexLock lock(conn->write_mu);
  if (conn->closed.load(std::memory_order_relaxed)) {
    return false;
  }
  if (WriteAll(conn->fd, frame)) {
    bytes_out_total_->Inc(frame.size());
    return true;
  }
  conn->closed.store(true, std::memory_order_relaxed);
  ::shutdown(conn->fd, SHUT_RDWR);
  return false;
}

void Server::WriteResponse(const std::shared_ptr<Connection>& conn,
                           uint64_t request_id,
                           const ResponsePayload& response,
                           std::string_view trace_prefix) {
  std::string payload(trace_prefix);
  EncodeResponsePayload(response, &payload);
  FrameHeader header;
  header.opcode = Opcode::kResponse;
  header.flags = trace_prefix.empty() ? 0 : kFlagTraceContext;
  header.request_id = request_id;
  std::string frame;
  EncodeFrame(header, payload, &frame);

  MutexLock lock(conn->write_mu);
  if (conn->closed.load(std::memory_order_relaxed)) {
    return;
  }
  if (WriteAll(conn->fd, frame)) {
    bytes_out_total_->Inc(frame.size());
  } else {
    // Peer gone or stalled past the send timeout: poison the
    // connection; the event loop reaps it on the resulting HUP.
    conn->closed.store(true, std::memory_order_relaxed);
    ::shutdown(conn->fd, SHUT_RDWR);
  }
}

obs::TraceId Server::GenerateTraceId() {
  MutexLock lock(trace_mu_);
  obs::TraceId id;
  do {
    id.hi = trace_rng_.Next64();
    id.lo = trace_rng_.Next64();
  } while (id.IsZero());
  return id;
}

std::string Server::RpczJson() const {
  std::string out = "{\"ops\":[";
  for (size_t i = 0; i < kNumOps; ++i) {
    obs::HistogramSnapshot latency = op_request_ns_[i]->Snapshot();
    if (i > 0) {
      out += ",";
    }
    out += StringPrintf(
        "{\"op\":\"%s\",\"requests\":%llu,\"errors\":%llu,"
        "\"p50_ns\":%llu,\"p90_ns\":%llu,\"p99_ns\":%llu,"
        "\"latency_sum_ns\":%llu,\"queue_wait_sum_ns\":%llu,"
        "\"execute_sum_ns\":%llu}",
        kOpcodeTable[i].name,
        static_cast<unsigned long long>(op_requests_total_[i]->Value()),
        static_cast<unsigned long long>(op_errors_total_[i]->Value()),
        static_cast<unsigned long long>(latency.p50),
        static_cast<unsigned long long>(latency.p90),
        static_cast<unsigned long long>(latency.p99),
        static_cast<unsigned long long>(latency.sum),
        static_cast<unsigned long long>(
            op_queue_wait_sum_ns_[i].load(std::memory_order_relaxed)),
        static_cast<unsigned long long>(
            op_execute_sum_ns_[i].load(std::memory_order_relaxed)));
  }
  obs::HistogramSnapshot queue_wait = queue_wait_ns_->Snapshot();
  obs::HistogramSnapshot execute = execute_ns_->Snapshot();
  out += StringPrintf(
      "],\"requests\":%llu,\"errors\":%llu,\"shed_requests\":%llu,"
      "\"bad_frames\":%llu,\"truncated_results\":%llu,"
      "\"queue_wait\":{\"count\":%llu,\"sum_ns\":%llu,\"p50_ns\":%llu,"
      "\"p90_ns\":%llu,\"p99_ns\":%llu},"
      "\"execute\":{\"count\":%llu,\"sum_ns\":%llu,\"p50_ns\":%llu,"
      "\"p90_ns\":%llu,\"p99_ns\":%llu},"
      "\"traces_recorded\":%llu,\"traces_retained\":%zu}",
      static_cast<unsigned long long>(requests_total_->Value()),
      static_cast<unsigned long long>(errors_total_->Value()),
      static_cast<unsigned long long>(shed_requests_total_->Value()),
      static_cast<unsigned long long>(bad_frames_total_->Value()),
      static_cast<unsigned long long>(truncated_results_total_->Value()),
      static_cast<unsigned long long>(queue_wait.count),
      static_cast<unsigned long long>(queue_wait.sum),
      static_cast<unsigned long long>(queue_wait.p50),
      static_cast<unsigned long long>(queue_wait.p90),
      static_cast<unsigned long long>(queue_wait.p99),
      static_cast<unsigned long long>(execute.count),
      static_cast<unsigned long long>(execute.sum),
      static_cast<unsigned long long>(execute.p50),
      static_cast<unsigned long long>(execute.p90),
      static_cast<unsigned long long>(execute.p99),
      static_cast<unsigned long long>(trace_store_.total_recorded()),
      trace_store_.size());
  return out;
}

void Server::Quarantine(const std::shared_ptr<Connection>& conn) {
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, conn->fd, nullptr);
  MutexLock lock(conns_mu_);
  conns_.erase(conn->fd);
  active_connections_->Set(static_cast<int64_t>(conns_.size()));
}

void Server::Unregister(const std::shared_ptr<Connection>& conn) {
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, conn->fd, nullptr);
  conn->closed.store(true, std::memory_order_relaxed);
  ::shutdown(conn->fd, SHUT_RDWR);
  {
    MutexLock lock(conns_mu_);
    conns_.erase(conn->fd);
    active_connections_->Set(static_cast<int64_t>(conns_.size()));
  }
}

}  // namespace authidx::net
