#include "authidx/net/replica.h"

#include <chrono>
#include <climits>
#include <thread>
#include <utility>

#include "authidx/common/retry.h"
#include "authidx/storage/engine.h"

namespace authidx::net {

namespace {

// Sleeps `delay_us` in small slices so Stop() is honored promptly.
void SleepInterruptible(uint64_t delay_us, const std::atomic<bool>& stop) {
  constexpr uint64_t kSliceUs = 10 * 1000;
  while (delay_us > 0 && !stop.load(std::memory_order_acquire)) {
    uint64_t slice = delay_us < kSliceUs ? delay_us : kSliceUs;
    std::this_thread::sleep_for(std::chrono::microseconds(slice));
    delay_us -= slice;
  }
}

}  // namespace

ReplicationFollower::ReplicationFollower(core::AuthorIndex* catalog,
                                         std::string dir,
                                         ReplicaOptions options)
    : catalog_(catalog),
      options_(std::move(options)),
      applier_(catalog->storage_engine(), std::move(dir),
               catalog->storage_engine() != nullptr
                   ? catalog->storage_engine()->env()
                   : nullptr),
      backoff_rng_(obs::MonotonicNowNs() | 1) {
  log_ = options_.logger != nullptr ? options_.logger
                                    : obs::Logger::Disabled();
  obs::MetricsRegistry* registry = options_.metrics != nullptr
                                       ? options_.metrics
                                       : catalog_->mutable_metrics();
  if (registry == nullptr) {
    owned_metrics_ = std::make_unique<obs::MetricsRegistry>();
    registry = owned_metrics_.get();
  }
  records_applied_total_ = registry->RegisterCounter(
      "authidx_repl_records_applied_total",
      "WAL records applied from the replication stream");
  snapshot_pairs_total_ = registry->RegisterCounter(
      "authidx_repl_snapshot_pairs_applied_total",
      "Key/value pairs applied from snapshot bootstrap chunks");
  reconnects_total_ = registry->RegisterCounter(
      "authidx_repl_reconnects_total",
      "Reconnect attempts after a lost or failed primary connection");
  lag_records_ = registry->RegisterGauge(
      "authidx_repl_lag_records",
      "Records received from the primary but not yet applied");
  lag_bytes_ = registry->RegisterGauge(
      "authidx_repl_lag_bytes",
      "WAL bytes between the applied cursor and the primary's committed "
      "frontier (lower bound across a WAL switch)");
  apply_ns_ = registry->RegisterLatencyHistogram(
      "authidx_repl_apply_ns",
      "Latency of applying one replicated record into the catalog");
}

ReplicationFollower::~ReplicationFollower() { Stop(); }

uint64_t ReplicationFollower::NsSinceLastContact() const {
  uint64_t last = last_contact_ns_.load(std::memory_order_acquire);
  if (last == 0) {
    return UINT64_MAX;
  }
  uint64_t now = obs::MonotonicNowNs();
  return now >= last ? now - last : 0;
}

storage::WalPosition ReplicationFollower::applied_position() const {
  MutexLock lock(pos_mu_);
  return applied_pos_;
}

storage::WalPosition ReplicationFollower::primary_committed() const {
  MutexLock lock(pos_mu_);
  return committed_pos_;
}

void ReplicationFollower::NoteContact() {
  last_contact_ns_.store(obs::MonotonicNowNs(), std::memory_order_release);
}

void ReplicationFollower::UpdateLag() {
  MutexLock lock(pos_mu_);
  uint64_t bytes = 0;
  if (committed_pos_.wal_number == applied_pos_.wal_number) {
    bytes = committed_pos_.offset > applied_pos_.offset
                ? committed_pos_.offset - applied_pos_.offset
                : 0;
  } else if (applied_pos_ < committed_pos_) {
    // Across a WAL switch the sealed files' sizes are unknown here;
    // report the committed WAL's own bytes as a lower bound.
    bytes = committed_pos_.offset;
  }
  lag_bytes_->Set(static_cast<int64_t>(bytes));
}

Status ReplicationFollower::ApplyRecordsBatch(std::string_view payload) {
  WireReplRecords batch;
  AUTHIDX_RETURN_NOT_OK(DecodeReplRecords(payload, &batch));
  NoteContact();
  {
    MutexLock lock(pos_mu_);
    committed_pos_ = {batch.committed.wal_number, batch.committed.offset};
  }
  size_t remaining = batch.records.size();
  lag_records_->Set(static_cast<int64_t>(remaining));
  for (const std::string& record : batch.records) {
    uint64_t start_ns = obs::MonotonicNowNs();
    AUTHIDX_RETURN_NOT_OK(catalog_->ApplyReplicatedRecord(record));
    apply_ns_->Record(obs::MonotonicNowNs() - start_ns);
    records_applied_total_->Inc();
    lag_records_->Set(static_cast<int64_t>(--remaining));
  }
  // The crash-consistency contract: the cursor moves only after every
  // record up to it is applied. A crash before this line re-delivers
  // the batch; the idempotent apply path skips it.
  storage::WalPosition end{batch.end.wal_number, batch.end.offset};
  AUTHIDX_RETURN_NOT_OK(applier_.CommitPosition(end));
  {
    MutexLock lock(pos_mu_);
    applied_pos_ = end;
  }
  UpdateLag();
  return Status::OK();
}

Status ReplicationFollower::ApplySnapshotChunk(std::string_view payload,
                                               bool* done) {
  WireReplSnapshot chunk;
  AUTHIDX_RETURN_NOT_OK(DecodeReplSnapshot(payload, &chunk));
  NoteContact();
  for (const auto& [key, value] : chunk.pairs) {
    std::string record = storage::StorageEngine::EncodePutRecord(key, value);
    uint64_t start_ns = obs::MonotonicNowNs();
    AUTHIDX_RETURN_NOT_OK(catalog_->ApplyReplicatedRecord(record));
    apply_ns_->Record(obs::MonotonicNowNs() - start_ns);
    snapshot_pairs_total_->Inc();
  }
  *done = chunk.done != 0;
  if (chunk.done != 0) {
    storage::WalPosition resume{chunk.resume.wal_number, chunk.resume.offset};
    AUTHIDX_RETURN_NOT_OK(applier_.CommitPosition(resume));
    {
      MutexLock lock(pos_mu_);
      applied_pos_ = resume;
    }
    UpdateLag();
    log_->Log(obs::LogLevel::kInfo, "repl_bootstrap_complete",
              {{"wal", resume.wal_number}, {"offset", resume.offset}});
  }
  return Status::OK();
}

Status ReplicationFollower::StreamOnce(bool stop_when_caught_up) {
  Result<storage::WalPosition> loaded = applier_.LoadPosition();
  if (!loaded.ok()) {
    return loaded.status();
  }
  storage::WalPosition pos = *loaded;
  {
    MutexLock lock(pos_mu_);
    applied_pos_ = pos;
  }

  ClientOptions copts;
  copts.host = options_.primary_host;
  copts.port = options_.primary_port;
  copts.io_timeout_ms = options_.io_timeout_ms;
  copts.retry.max_attempts = 1;  // The outer loop owns reconnects.
  Client client(copts);
  AUTHIDX_RETURN_NOT_OK(client.Connect());

  WireReplSubscribeAck ack;
  bool reseeded = false;
  for (;;) {
    std::string payload;
    EncodeReplSubscribe({pos.wal_number, pos.offset}, &payload);
    uint64_t request_id = 0;
    AUTHIDX_RETURN_NOT_OK(
        client.SendRequest(Opcode::kReplSubscribe, payload, &request_id));
    uint64_t response_id = 0;
    ResponsePayload response;
    AUTHIDX_RETURN_NOT_OK(client.ReceiveResponse(&response_id, &response));
    if (response.status == WireStatus::kNotFound && !reseeded &&
        !(pos == storage::WalPosition{})) {
      // The cursor is *ahead* of the primary's committed frontier (a
      // merely garbage-collected cursor is answered with a snapshot
      // bootstrap instead): this primary is not the one we followed —
      // restored from backup, or a different store. An empty follower
      // simply re-bootstraps; one holding data may have entries the
      // primary lacks and must be reseeded by the operator.
      if (catalog_->entry_count() != 0) {
        return Status::FailedPrecondition(
            "replication cursor is not servable by the primary and the "
            "replica is not empty; wipe the replica store to reseed");
      }
      log_->Log(obs::LogLevel::kWarn, "repl_cursor_lost",
                {{"wal", pos.wal_number}, {"offset", pos.offset}});
      pos = {};
      AUTHIDX_RETURN_NOT_OK(applier_.CommitPosition(pos));
      {
        MutexLock lock(pos_mu_);
        applied_pos_ = pos;
      }
      reseeded = true;
      continue;
    }
    if (response.status != WireStatus::kOk) {
      return StatusFromWire(response.status, std::move(response.message));
    }
    AUTHIDX_RETURN_NOT_OK(DecodeReplSubscribeAck(response.body, &ack));
    break;
  }
  log_->Log(obs::LogLevel::kInfo, "repl_subscribed",
            {{"mode", static_cast<uint64_t>(ack.mode)},
             {"wal", ack.start.wal_number},
             {"offset", ack.start.offset}});

  bool snapshot_active = ack.mode == 1;
  bool saw_frame = false;
  while (!stop_.load(std::memory_order_acquire)) {
    FrameHeader header;
    std::string body;
    AUTHIDX_RETURN_NOT_OK(client.ReceiveStreamFrame(&header, &body));
    switch (header.opcode) {
      case Opcode::kReplRecords:
        AUTHIDX_RETURN_NOT_OK(ApplyRecordsBatch(body));
        break;
      case Opcode::kReplSnapshot: {
        bool done = false;
        AUTHIDX_RETURN_NOT_OK(ApplySnapshotChunk(body, &done));
        if (done) {
          snapshot_active = false;
        }
        break;
      }
      case Opcode::kReplHeartbeat: {
        WireReplHeartbeat hb;
        AUTHIDX_RETURN_NOT_OK(DecodeReplHeartbeat(body, &hb));
        NoteContact();
        primary_degraded_.store(hb.degraded != 0,
                                std::memory_order_release);
        {
          MutexLock lock(pos_mu_);
          committed_pos_ = {hb.committed.wal_number, hb.committed.offset};
        }
        UpdateLag();
        break;
      }
      default:
        return Status::Corruption(
            "unexpected opcode " +
            std::to_string(static_cast<int>(header.opcode)) +
            " on the replication stream");
    }
    saw_frame = true;
    if (stop_when_caught_up && !snapshot_active) {
      MutexLock lock(pos_mu_);
      if (saw_frame && applied_pos_ == committed_pos_) {
        return Status::OK();
      }
    }
  }
  return Status::OK();
}

Status ReplicationFollower::CatchUpOnce() {
  if (catalog_->storage_engine() == nullptr) {
    return Status::FailedPrecondition(
        "replication follower requires a persistent replica catalog");
  }
  return StreamOnce(/*stop_when_caught_up=*/true);
}

Status ReplicationFollower::Start() {
  if (catalog_->storage_engine() == nullptr) {
    return Status::FailedPrecondition(
        "replication follower requires a persistent replica catalog");
  }
  if (running_.load(std::memory_order_acquire)) {
    return Status::FailedPrecondition("follower already running");
  }
  stop_.store(false, std::memory_order_release);
  running_.store(true, std::memory_order_release);
  loop_thread_ = std::thread([this] {
    RetryPolicy policy;
    policy.max_attempts = INT_MAX;
    policy.base_delay_us = options_.reconnect_base_delay_us;
    policy.max_delay_us = options_.reconnect_max_delay_us;
    int attempt = 0;
    while (!stop_.load(std::memory_order_acquire)) {
      uint64_t contact_before =
          last_contact_ns_.load(std::memory_order_acquire);
      Status status = StreamOnce(/*stop_when_caught_up=*/false);
      if (stop_.load(std::memory_order_acquire)) {
        break;
      }
      // A stream that made contact before failing earned a fresh
      // backoff ladder; a primary that is plain down keeps doubling.
      if (last_contact_ns_.load(std::memory_order_acquire) !=
          contact_before) {
        attempt = 0;
      }
      attempt = attempt < 30 ? attempt + 1 : attempt;
      reconnects_total_->Inc();
      uint64_t delay_us = RetryBackoffDelayUs(policy, attempt,
                                              &backoff_rng_);
      log_->Log(obs::LogLevel::kWarn, "repl_reconnect",
                {{"error", status.ToString()},
                 {"attempt", static_cast<uint64_t>(attempt)},
                 {"delay_us", delay_us}});
      SleepInterruptible(delay_us, stop_);
    }
  });
  return Status::OK();
}

void ReplicationFollower::Stop() {
  stop_.store(true, std::memory_order_release);
  if (loop_thread_.joinable()) {
    loop_thread_.join();
  }
  running_.store(false, std::memory_order_release);
}

}  // namespace authidx::net
