#include "authidx/net/client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <thread>
#include <utility>

#include "authidx/common/coding.h"
#include "authidx/common/env.h"

namespace authidx::net {

namespace {

// On failure `*err` holds the errno of the failing send, captured
// before any later call (e.g. close()) can clobber it.
bool WriteAll(int fd, std::string_view data, int* err) {
  size_t off = 0;
  while (off < data.size()) {
    ssize_t n =
        ::send(fd, data.data() + off, data.size() - off, MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) {
        continue;
      }
      // send() returning 0 leaves errno stale; report it as a reset
      // rather than whatever the previous syscall happened to set.
      *err = n == 0 ? ECONNRESET : errno;
      return false;
    }
    off += static_cast<size_t>(n);
  }
  return true;
}

uint64_t MonotonicNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

Client::Client(ClientOptions options)
    : options_(std::move(options)),
      rng_(0x9e3779b97f4a7c15ull ^
           static_cast<uint64_t>(options_.port)) {
  log_ = options_.logger != nullptr ? options_.logger
                                    : obs::Logger::Disabled();
  endpoints_.push_back({options_.host, options_.port});
  for (const std::string& replica : options_.replicas) {
    size_t colon = replica.rfind(':');
    Endpoint endpoint;
    if (colon == std::string::npos) {
      // Unparseable entries stay in rotation and fail at connect time
      // with a clear InvalidArgument instead of being silently dropped.
      endpoint.host = replica;
    } else {
      endpoint.host = replica.substr(0, colon);
      endpoint.port = std::atoi(replica.c_str() + colon + 1);
    }
    endpoints_.push_back(std::move(endpoint));
  }
}

Client::~Client() { Close(); }

std::string Client::current_endpoint() const {
  const Endpoint& endpoint = endpoints_[current_endpoint_];
  return endpoint.host + ":" + std::to_string(endpoint.port);
}

uint64_t Client::RemainingDeadlineNs() const {
  if (deadline_at_ns_ == 0) {
    return UINT64_MAX;
  }
  uint64_t now = MonotonicNs();
  return deadline_at_ns_ > now ? deadline_at_ns_ - now : 0;
}

void Client::ApplyIoTimeouts() {
  if (fd_ < 0) {
    return;
  }
  uint64_t ms = static_cast<uint64_t>(
      options_.io_timeout_ms > 0 ? options_.io_timeout_ms : 0);
  uint64_t remaining = RemainingDeadlineNs();
  if (remaining != UINT64_MAX) {
    // Clamp to the remaining budget so a wedged server cannot hold the
    // call past its deadline; never 0 (0 would mean "block forever").
    uint64_t remaining_ms = remaining / 1000000;
    if (remaining_ms < 1) {
      remaining_ms = 1;
    }
    ms = ms == 0 ? remaining_ms : std::min(ms, remaining_ms);
  }
  timeval timeout;
  timeout.tv_sec = static_cast<time_t>(ms / 1000);
  timeout.tv_usec = static_cast<suseconds_t>((ms % 1000) * 1000);
  ::setsockopt(fd_, SOL_SOCKET, SO_SNDTIMEO, &timeout, sizeof(timeout));
  ::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &timeout, sizeof(timeout));
}

Status Client::Connect() {
  if (fd_ >= 0) {
    return Status::OK();
  }
  const Endpoint& endpoint = endpoints_[current_endpoint_];
  std::string host = endpoint.host == "localhost" ? "127.0.0.1"
                                                  : endpoint.host;
  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(endpoint.port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    return Status::InvalidArgument("unparseable host: " + endpoint.host);
  }
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::IOError("socket: " + ErrnoMessage(errno));
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    Status status = Status::IOError("connect " + host + ":" +
                                    std::to_string(endpoint.port) + ": " +
                                    ErrnoMessage(errno));
    ::close(fd);
    return status;
  }
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  fd_ = fd;
  ApplyIoTimeouts();
  read_buffer_.clear();
  return Status::OK();
}

void Client::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  read_buffer_.clear();
}

Status Client::SendRequest(Opcode opcode, std::string_view payload,
                           uint64_t* request_id, obs::TraceId* trace_id) {
  if (fd_ < 0) {
    return Status::FailedPrecondition("client not connected");
  }
  *request_id = next_request_id_++;
  FrameHeader header;
  header.opcode = opcode;
  header.request_id = *request_id;
  std::string frame;
  if (options_.trace) {
    TraceContext ctx;
    do {
      ctx.trace_id.hi = rng_.Next64();
      ctx.trace_id.lo = rng_.Next64();
    } while (ctx.trace_id.IsZero());
    ctx.sampled = true;
    header.flags = kFlagTraceContext;
    std::string prefixed;
    prefixed.reserve(kTraceContextBytes + payload.size());
    EncodeTraceContext(ctx, &prefixed);
    prefixed.append(payload);
    EncodeFrame(header, prefixed, &frame);
    if (trace_id != nullptr) {
      *trace_id = ctx.trace_id;
    }
  } else {
    EncodeFrame(header, payload, &frame);
    if (trace_id != nullptr) {
      *trace_id = obs::TraceId{};
    }
  }
  int send_errno = 0;
  if (!WriteAll(fd_, frame, &send_errno)) {
    Close();  // close() may clobber errno; send_errno was saved first.
    return Status::IOError("send: " + ErrnoMessage(send_errno));
  }
  return Status::OK();
}

Status Client::ReceiveResponse(uint64_t* request_id,
                               ResponsePayload* response) {
  if (fd_ < 0) {
    return Status::FailedPrecondition("client not connected");
  }
  while (true) {
    DecodedFrame frame;
    Status error;
    DecodeOutcome outcome = DecodeFrame(
        read_buffer_, options_.max_frame_bytes, &frame, &error);
    if (outcome == DecodeOutcome::kError) {
      Close();
      return Status::Corruption("bad response frame: " + error.message());
    }
    if (outcome == DecodeOutcome::kFrame) {
      if (frame.header.opcode != Opcode::kResponse) {
        Close();
        return Status::Corruption("server sent a non-RESPONSE frame");
      }
      *request_id = frame.header.request_id;
      std::string_view payload = frame.payload;
      last_trace_ = RpcTrace{};
      if ((frame.header.flags & kFlagTraceContext) != 0) {
        TraceContext ctx;
        Status ts = DecodeTraceContext(&payload, &ctx);
        if (ts.ok()) {
          ts = DecodeTraceSpans(&payload, &last_trace_.spans);
        }
        if (!ts.ok()) {
          Close();
          return Status::Corruption("bad response trace context: " +
                                    std::string(ts.message()));
        }
        last_trace_.trace_id = ctx.trace_id;
        last_trace_.sampled = ctx.sampled;
      }
      Status status = DecodeResponsePayload(payload, response);
      read_buffer_.erase(0, frame.frame_bytes);
      if (!status.ok()) {
        Close();
      }
      return status;
    }
    char buf[65536];
    ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
    if (n == 0) {
      Close();
      return Status::IOError("server closed the connection");
    }
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      Close();
      // EAGAIN/EWOULDBLOCK here means SO_RCVTIMEO expired.
      return Status::IOError("recv: " + ErrnoMessage(errno));
    }
    read_buffer_.append(buf, static_cast<size_t>(n));
  }
}

Status Client::ReceiveStreamFrame(FrameHeader* header, std::string* payload) {
  if (fd_ < 0) {
    return Status::FailedPrecondition("client not connected");
  }
  while (true) {
    DecodedFrame frame;
    Status error;
    DecodeOutcome outcome = DecodeFrame(
        read_buffer_, options_.max_frame_bytes, &frame, &error);
    if (outcome == DecodeOutcome::kError) {
      Close();
      return Status::Corruption("bad stream frame: " + error.message());
    }
    if (outcome == DecodeOutcome::kFrame) {
      *header = frame.header;
      payload->assign(frame.payload);
      read_buffer_.erase(0, frame.frame_bytes);
      return Status::OK();
    }
    char buf[65536];
    ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
    if (n == 0) {
      Close();
      return Status::IOError("server closed the connection");
    }
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      Close();
      return Status::IOError("recv: " + ErrnoMessage(errno));
    }
    read_buffer_.append(buf, static_cast<size_t>(n));
  }
}

Status Client::CallOnce(Opcode opcode, std::string_view payload,
                        ResponsePayload* response, bool* maybe_executed) {
  *maybe_executed = false;
  if (RemainingDeadlineNs() == 0) {
    // IOError, like a socket timeout: the same transient class, so the
    // caller's failover logic treats both uniformly.
    return Status::IOError("call deadline of " +
                           std::to_string(options_.deadline_ms) +
                           " ms exceeded");
  }
  AUTHIDX_RETURN_NOT_OK(Connect());
  ApplyIoTimeouts();
  uint64_t sent_id = 0;
  // A SendRequest failure leaves at most a partial frame on the wire,
  // which can never pass the server's CRC — the request provably did
  // not execute. Once the whole frame is handed to the kernel, any
  // later failure is ambiguous: the server may have executed the
  // request and only the response was lost.
  AUTHIDX_RETURN_NOT_OK(SendRequest(opcode, payload, &sent_id));
  *maybe_executed = true;
  uint64_t got_id = 0;
  AUTHIDX_RETURN_NOT_OK(ReceiveResponse(&got_id, response));
  if (got_id != sent_id) {
    // The synchronous path never pipelines, so any mismatch means the
    // stream is out of step with a previous, abandoned call.
    Close();
    return Status::IOError("response id " + std::to_string(got_id) +
                           " does not match request " +
                           std::to_string(sent_id));
  }
  if (response->status != WireStatus::kOk) {
    if (response->status == WireStatus::kRetryableBusy) {
      // Admission control sheds before execution (docs/PROTOCOL.md),
      // so a shed request is provably unexecuted despite the
      // completed round trip.
      *maybe_executed = false;
    }
    Status status = StatusFromWire(response->status,
                                   std::move(response->message));
    if (response->status == WireStatus::kBadFrame) {
      // The server is about to close the stream; beat it to the punch
      // so the next attempt starts on a fresh connection.
      Close();
    }
    return status;
  }
  return Status::OK();
}

Status Client::Call(Opcode opcode, std::string_view payload,
                    ResponsePayload* response) {
  // ADD mutates the catalog, so a blind re-send can duplicate entries;
  // it is only retried when the failed attempt provably never executed
  // (see the class comment in client.h).
  const bool idempotent = opcode != Opcode::kAdd;
  // Mutations are pinned to the primary: a replica would reject them
  // with NOT_PRIMARY, and silently "failing over" a write is exactly
  // the split-brain a replica set must not allow.
  const bool mutation =
      opcode == Opcode::kAdd || opcode == Opcode::kFlush;
  deadline_at_ns_ =
      options_.deadline_ms > 0
          ? MonotonicNs() +
                static_cast<uint64_t>(options_.deadline_ms) * 1000000
          : 0;
  if (mutation && current_endpoint_ != 0) {
    Close();
    current_endpoint_ = 0;
  }
  const int attempts = std::max(options_.retry.max_attempts, 1);
  Status status;
  for (int attempt = 1; attempt <= attempts; ++attempt) {
    bool maybe_executed = false;
    status = CallOnce(opcode, payload, response, &maybe_executed);
    if (status.ok() || !IsTransientError(status)) {
      deadline_at_ns_ = 0;
      return status;
    }
    if (!idempotent && maybe_executed) {
      deadline_at_ns_ = 0;
      return Status(status.code(),
                    std::string(status.message()) +
                        " (not retried: the request was fully sent and "
                        "may have executed server-side)");
    }
    if (attempt == attempts || RemainingDeadlineNs() == 0) {
      break;
    }
    if (!mutation && endpoints_.size() > 1) {
      // Read failover: the next attempt targets the next endpoint in
      // the rotation (wrapping back through the primary).
      Close();
      current_endpoint_ = (current_endpoint_ + 1) % endpoints_.size();
      log_->Log(obs::LogLevel::kWarn, "client_failover",
                {{"opcode", OpcodeName(opcode)},
                 {"endpoint", current_endpoint()},
                 {"error", status.message()}});
    }
    uint64_t delay_us = RetryBackoffDelayUs(options_.retry, attempt, &rng_);
    // Never sleep past the deadline.
    delay_us = std::min(delay_us, RemainingDeadlineNs() / 1000);
    log_->Log(obs::LogLevel::kWarn, "client_retry",
              {{"opcode", OpcodeName(opcode)},
               {"attempt", static_cast<uint64_t>(attempt)},
               {"error", status.message()},
               {"delay_us", delay_us}});
    if (delay_us > 0) {
      std::this_thread::sleep_for(std::chrono::microseconds(delay_us));
    }
  }
  deadline_at_ns_ = 0;
  return status;
}

Status Client::Ping() {
  ResponsePayload response;
  return Call(Opcode::kPing, {}, &response);
}

Result<WireQueryResult> Client::Query(std::string_view query_text) {
  std::string payload;
  EncodeQueryRequest(query_text, &payload);
  ResponsePayload response;
  AUTHIDX_RETURN_NOT_OK(Call(Opcode::kQuery, payload, &response));
  WireQueryResult result;
  AUTHIDX_RETURN_NOT_OK(DecodeQueryResult(response.body, &result));
  return result;
}

Result<uint64_t> Client::Add(const std::vector<std::string>& tsv_lines) {
  std::string payload;
  EncodeAddRequest(tsv_lines, &payload);
  ResponsePayload response;
  AUTHIDX_RETURN_NOT_OK(Call(Opcode::kAdd, payload, &response));
  std::string_view body = response.body;
  uint64_t added = 0;
  AUTHIDX_RETURN_NOT_OK(GetVarint64(&body, &added));
  return added;
}

Status Client::Flush() {
  ResponsePayload response;
  return Call(Opcode::kFlush, {}, &response);
}

Result<WireStats> Client::Stats() {
  ResponsePayload response;
  AUTHIDX_RETURN_NOT_OK(Call(Opcode::kStats, {}, &response));
  WireStats stats;
  AUTHIDX_RETURN_NOT_OK(DecodeStats(response.body, &stats));
  return stats;
}

}  // namespace authidx::net
