#ifndef AUTHIDX_NET_PROTOCOL_H_
#define AUTHIDX_NET_PROTOCOL_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "authidx/common/result.h"
#include "authidx/common/status.h"
#include "authidx/model/record.h"
#include "authidx/obs/trace.h"

namespace authidx::net {

// The authidx wire protocol: length-prefixed, CRC-framed binary frames
// over a byte stream (TCP). docs/PROTOCOL.md is the normative spec;
// the opcode and status tables below are its machine-checked source of
// truth (tests/net_protocol_test.cc fails if either drifts from the
// doc). All multi-byte integers are little-endian; strings are
// varint32-length-prefixed byte sequences.

/// Protocol version carried in every frame header. A server answers a
/// frame whose version it does not speak with BAD_FRAME and closes the
/// connection (see docs/PROTOCOL.md "Versioning").
inline constexpr uint8_t kProtocolVersion = 1;

/// Bytes of the fixed frame prologue: u32 length + u8 version +
/// u8 opcode + u16 flags + u64 request id.
inline constexpr size_t kFrameHeaderBytes = 16;

/// Bytes of the masked-CRC32C trailer closing every frame.
inline constexpr size_t kFrameTrailerBytes = 4;

/// Framing overhead per message: header plus CRC trailer.
inline constexpr size_t kFrameOverheadBytes =
    kFrameHeaderBytes + kFrameTrailerBytes;

/// Default cap on a whole frame (header + payload + trailer). Both
/// sides drop the connection on a frame announcing more than their
/// configured cap, before buffering the payload.
inline constexpr size_t kMaxFrameBytesDefault = 1u << 20;

/// Operation selector carried in byte 5 of every frame. Requests use
/// the 0x01-0x7f range; the single server->client opcode RESPONSE has
/// the high bit set.
enum class Opcode : uint8_t {
  /// Liveness probe; empty payload both ways.
  kPing = 0x01,
  /// Run a query string (the authidx query grammar).
  kQuery = 0x02,
  /// Ingest TSV entry lines.
  kAdd = 0x03,
  /// Persist pending writes (engine flush).
  kFlush = 0x04,
  /// Catalog size counters.
  kStats = 0x05,
  /// Server->client reply; request_id echoes the request.
  kResponse = 0x80,
};

/// One row of the opcode table: the value and its spec name.
struct OpcodeInfo {
  /// Wire value.
  Opcode opcode;
  /// Name used in docs/PROTOCOL.md.
  const char* name;
};

/// Every opcode, in wire-value order. docs/PROTOCOL.md's opcode table
/// is checked row-for-row against this array.
inline constexpr OpcodeInfo kOpcodeTable[] = {
    {Opcode::kPing, "PING"},     {Opcode::kQuery, "QUERY"},
    {Opcode::kAdd, "ADD"},       {Opcode::kFlush, "FLUSH"},
    {Opcode::kStats, "STATS"},   {Opcode::kResponse, "RESPONSE"},
};

/// Spec name of `opcode` ("PING"); "UNKNOWN" for unassigned values.
std::string_view OpcodeName(Opcode opcode);

/// True when `value` is an assigned opcode.
bool IsKnownOpcode(uint8_t value);

/// First byte of every response payload: the outcome of the request.
/// Values 0-10 mirror authidx::StatusCode one-for-one; values >= 100
/// are transport-level conditions with no Status equivalent.
enum class WireStatus : uint8_t {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kAlreadyExists = 3,
  kOutOfRange = 4,
  kCorruption = 5,
  kIOError = 6,
  kNotSupported = 7,
  kFailedPrecondition = 8,
  kResourceExhausted = 9,
  kInternal = 10,
  /// Admission control shed the request before execution: the server is
  /// overloaded, nothing ran, and the client should back off and retry.
  kRetryableBusy = 100,
  /// The frame failed CRC/length/version validation; the server closes
  /// the connection after sending this.
  kBadFrame = 101,
  /// The request opcode is not assigned in this protocol version.
  kUnknownOpcode = 102,
};

/// One row of the status table: the value and its spec name.
struct WireStatusInfo {
  /// Wire value.
  WireStatus status;
  /// Name used in docs/PROTOCOL.md.
  const char* name;
};

/// Every wire status, in wire-value order. docs/PROTOCOL.md's status
/// table is checked row-for-row against this array.
inline constexpr WireStatusInfo kWireStatusTable[] = {
    {WireStatus::kOk, "OK"},
    {WireStatus::kInvalidArgument, "INVALID_ARGUMENT"},
    {WireStatus::kNotFound, "NOT_FOUND"},
    {WireStatus::kAlreadyExists, "ALREADY_EXISTS"},
    {WireStatus::kOutOfRange, "OUT_OF_RANGE"},
    {WireStatus::kCorruption, "CORRUPTION"},
    {WireStatus::kIOError, "IO_ERROR"},
    {WireStatus::kNotSupported, "NOT_SUPPORTED"},
    {WireStatus::kFailedPrecondition, "FAILED_PRECONDITION"},
    {WireStatus::kResourceExhausted, "RESOURCE_EXHAUSTED"},
    {WireStatus::kInternal, "INTERNAL"},
    {WireStatus::kRetryableBusy, "RETRYABLE_BUSY"},
    {WireStatus::kBadFrame, "BAD_FRAME"},
    {WireStatus::kUnknownOpcode, "UNKNOWN_OPCODE"},
};

/// Spec name of `status` ("RETRYABLE_BUSY"); "UNKNOWN" for unassigned.
std::string_view WireStatusName(WireStatus status);

/// Frame-header flag bit: when set, the payload begins with a
/// kTraceContextBytes trace-context prefix (16-byte trace id + 1-byte
/// sampling decision); the logical payload follows it. Valid on
/// requests (client asks the server to trace) and responses (server
/// returns the trace id plus its span tree ahead of the response
/// payload). See docs/PROTOCOL.md "Trace context".
inline constexpr uint16_t kFlagTraceContext = 0x0001;

/// Every flag bit assigned in protocol version 1. DecodeFrame rejects
/// frames with any bit outside this mask set (kError, connection
/// closed) so unassigned bits stay meaningful for future versions.
inline constexpr uint16_t kKnownFlagsMask = kFlagTraceContext;

/// One row of the flag table: the bit and its spec name.
struct FlagInfo {
  /// Wire bit (a power of two).
  uint16_t bit;
  /// Name used in docs/PROTOCOL.md.
  const char* name;
};

/// Every assigned flag bit, in bit order. docs/PROTOCOL.md's flag
/// table is checked row-for-row against this array.
inline constexpr FlagInfo kFlagTable[] = {
    {kFlagTraceContext, "TRACE_CONTEXT"},
};

/// Bytes of the trace-context payload prefix: 16-byte trace id
/// (hi u64 LE, lo u64 LE) + 1-byte sampling decision (0 or 1).
inline constexpr size_t kTraceContextBytes = 17;

/// The trace-context extension carried when kFlagTraceContext is set:
/// the 128-bit correlation id plus whether the sender decided to
/// sample (record spans for) this request.
struct TraceContext {
  /// Correlation id; the zero sentinel means "no trace".
  obs::TraceId trace_id;
  /// True when the sender sampled this request; the receiver records
  /// spans and returns them on the response.
  bool sampled = false;
};

/// Appends the kTraceContextBytes prefix encoding `ctx` to `*dst`.
void EncodeTraceContext(const TraceContext& ctx, std::string* dst);

/// Strips a trace-context prefix from the front of `*payload` into
/// `*ctx`. Fails with Corruption when fewer than kTraceContextBytes
/// remain or the sampling byte is not 0/1.
Status DecodeTraceContext(std::string_view* payload, TraceContext* ctx);

/// Appends a span list (the server's lifecycle span tree) to `*dst`:
/// varint32 count, then per span a length-prefixed name, varint32
/// depth, varint64 start offset (ns relative to the first span's
/// start), varint64 duration ns. Start offsets keep the encoding
/// compact and clock-domain free: the receiver rebases onto its own
/// zero.
void EncodeTraceSpans(const std::vector<obs::Trace::Span>& spans,
                      std::string* dst);

/// Decodes a span list from the front of `*payload` (consuming it),
/// rebasing start times at zero. Fails with Corruption on truncation
/// or when the count exceeds the remaining payload.
Status DecodeTraceSpans(std::string_view* payload,
                        std::vector<obs::Trace::Span>* spans);

/// Maps an engine Status onto the wire (codes 0-10 map one-for-one).
WireStatus WireStatusFromStatus(const Status& status);

/// Inverse mapping for the client: reconstructs a Status carrying
/// `message`. Transport-level conditions map onto the closest engine
/// code — RETRYABLE_BUSY becomes ResourceExhausted (transient under
/// common/retry.h, so RetryWithBackoff retries it), BAD_FRAME becomes
/// InvalidArgument, UNKNOWN_OPCODE becomes NotSupported.
Status StatusFromWire(WireStatus status, std::string message);

/// Decoded fixed prologue of one frame (the length field is implicit
/// in DecodedFrame::frame_bytes).
struct FrameHeader {
  /// Protocol version (kProtocolVersion).
  uint8_t version = kProtocolVersion;
  /// Operation selector.
  Opcode opcode = Opcode::kPing;
  /// Assigned bits in kKnownFlagsMask (kFlagTraceContext); all other
  /// bits are reserved and must be zero in version 1.
  uint16_t flags = 0;
  /// Client-chosen correlation id, echoed verbatim in the response;
  /// what makes pipelining possible.
  uint64_t request_id = 0;
};

/// Appends one complete frame (header, payload, masked-CRC32C trailer)
/// to `*dst`.
void EncodeFrame(const FrameHeader& header, std::string_view payload,
                 std::string* dst);

/// Outcome of a DecodeFrame attempt against a byte buffer.
enum class DecodeOutcome {
  /// A complete, CRC-valid frame was decoded.
  kFrame,
  /// The buffer holds a valid prefix; read more bytes and retry.
  kNeedMore,
  /// The stream is unrecoverable (bad length/version/CRC/flags); the
  /// connection must be closed.
  kError,
};

/// A successfully decoded frame. `payload` aliases the input buffer and
/// is only valid until the buffer mutates.
struct DecodedFrame {
  /// Decoded prologue fields.
  FrameHeader header;
  /// Payload bytes (aliases the input buffer).
  std::string_view payload;
  /// Total encoded size, for consuming the frame from the buffer.
  size_t frame_bytes = 0;
};

/// Attempts to decode one frame from the front of `input`. On kError,
/// `*error` (may be null) receives the reason. Frames announcing more
/// than `max_frame_bytes` total are kError before their payload is
/// buffered.
DecodeOutcome DecodeFrame(std::string_view input, size_t max_frame_bytes,
                          DecodedFrame* out, Status* error);

/// QUERY request payload: the query text.
void EncodeQueryRequest(std::string_view query_text, std::string* dst);

/// Decodes a QUERY request payload (view aliases `payload`).
Status DecodeQueryRequest(std::string_view payload,
                          std::string_view* query_text);

/// ADD request payload: a batch of TSV entry lines.
void EncodeAddRequest(const std::vector<std::string>& tsv_lines,
                      std::string* dst);

/// Decodes an ADD request payload (views alias `payload`).
Status DecodeAddRequest(std::string_view payload,
                        std::vector<std::string_view>* tsv_lines);

/// One hit of a QUERY response, rendered server-side so the client
/// needs no catalog.
struct WireHit {
  /// Dense entry id on the server.
  EntryId id = 0;
  /// BM25 score when ranked by relevance; 0 in collation order.
  double score = 0.0;
  /// Author in index form ("Surname, Given, Suffix*").
  std::string author;
  /// Article title.
  std::string title;
  /// Rendered citation ("95:691 (1993)").
  std::string citation;
};

/// QUERY response body.
struct WireQueryResult {
  /// Matches before offset/limit.
  uint64_t total_matches = 0;
  /// query::PlanKind the server's planner chose, as its wire value.
  uint8_t plan = 0;
  /// The returned page of hits.
  std::vector<WireHit> hits;
};

/// Encodes a QUERY response body.
void EncodeQueryResult(const WireQueryResult& result, std::string* dst);

/// Decodes a QUERY response body.
Status DecodeQueryResult(std::string_view body, WireQueryResult* result);

/// STATS response body: catalog size counters.
struct WireStats {
  /// Total indexed entries.
  uint64_t entry_count = 0;
  /// Distinct author groups.
  uint64_t group_count = 0;
};

/// Encodes a STATS response body.
void EncodeStats(const WireStats& stats, std::string* dst);

/// Decodes a STATS response body.
Status DecodeStats(std::string_view body, WireStats* stats);

/// Payload of every RESPONSE frame: a status, a human-readable message
/// (empty on OK), and an opcode-specific body (empty on error).
struct ResponsePayload {
  /// Outcome of the request.
  WireStatus status = WireStatus::kOk;
  /// Error detail; empty when status == kOk.
  std::string message;
  /// Opcode-specific body (e.g. an encoded WireQueryResult).
  std::string body;
};

/// Encodes a RESPONSE payload.
void EncodeResponsePayload(const ResponsePayload& response, std::string* dst);

/// Decodes a RESPONSE payload.
Status DecodeResponsePayload(std::string_view payload,
                             ResponsePayload* response);

}  // namespace authidx::net

#endif  // AUTHIDX_NET_PROTOCOL_H_
