#ifndef AUTHIDX_NET_PROTOCOL_H_
#define AUTHIDX_NET_PROTOCOL_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "authidx/common/result.h"
#include "authidx/common/status.h"
#include "authidx/model/record.h"
#include "authidx/obs/trace.h"

namespace authidx::net {

// The authidx wire protocol: length-prefixed, CRC-framed binary frames
// over a byte stream (TCP). docs/PROTOCOL.md is the normative spec;
// the opcode and status tables below are its machine-checked source of
// truth (tests/net_protocol_test.cc fails if either drifts from the
// doc). All multi-byte integers are little-endian; strings are
// varint32-length-prefixed byte sequences.

/// Protocol version carried in every frame header. A server answers a
/// frame whose version it does not speak with BAD_FRAME and closes the
/// connection (see docs/PROTOCOL.md "Versioning").
inline constexpr uint8_t kProtocolVersion = 1;

/// Bytes of the fixed frame prologue: u32 length + u8 version +
/// u8 opcode + u16 flags + u64 request id.
inline constexpr size_t kFrameHeaderBytes = 16;

/// Bytes of the masked-CRC32C trailer closing every frame.
inline constexpr size_t kFrameTrailerBytes = 4;

/// Framing overhead per message: header plus CRC trailer.
inline constexpr size_t kFrameOverheadBytes =
    kFrameHeaderBytes + kFrameTrailerBytes;

/// Default cap on a whole frame (header + payload + trailer). Both
/// sides drop the connection on a frame announcing more than their
/// configured cap, before buffering the payload.
inline constexpr size_t kMaxFrameBytesDefault = 1u << 20;

/// Operation selector carried in byte 5 of every frame. Requests use
/// the 0x01-0x7f range; server->client opcodes have the high bit set:
/// RESPONSE answers one request, while the REPL_* stream opcodes are
/// pushed to a subscribed follower (echoing the REPL_SUBSCRIBE
/// request_id) for the life of the subscription.
enum class Opcode : uint8_t {
  /// Liveness probe; empty payload both ways.
  kPing = 0x01,
  /// Run a query string (the authidx query grammar).
  kQuery = 0x02,
  /// Ingest TSV entry lines.
  kAdd = 0x03,
  /// Persist pending writes (engine flush).
  kFlush = 0x04,
  /// Catalog size counters.
  kStats = 0x05,
  /// Follower subscribes for WAL shipping from a position cursor.
  kReplSubscribe = 0x06,
  /// Server->client reply; request_id echoes the request.
  kResponse = 0x80,
  /// Stream: a batch of committed WAL records.
  kReplRecords = 0x81,
  /// Stream: the primary's committed position (liveness + lag signal).
  kReplHeartbeat = 0x82,
  /// Stream: a chunk of snapshot key/value pairs (follower bootstrap).
  kReplSnapshot = 0x83,
};

/// One row of the opcode table: the value and its spec name.
struct OpcodeInfo {
  /// Wire value.
  Opcode opcode;
  /// Name used in docs/PROTOCOL.md.
  const char* name;
};

/// Every opcode, in wire-value order. docs/PROTOCOL.md's opcode table
/// is checked row-for-row against this array.
inline constexpr OpcodeInfo kOpcodeTable[] = {
    {Opcode::kPing, "PING"},
    {Opcode::kQuery, "QUERY"},
    {Opcode::kAdd, "ADD"},
    {Opcode::kFlush, "FLUSH"},
    {Opcode::kStats, "STATS"},
    {Opcode::kReplSubscribe, "REPL_SUBSCRIBE"},
    {Opcode::kResponse, "RESPONSE"},
    {Opcode::kReplRecords, "REPL_RECORDS"},
    {Opcode::kReplHeartbeat, "REPL_HEARTBEAT"},
    {Opcode::kReplSnapshot, "REPL_SNAPSHOT"},
};

/// Number of *request* opcodes (the 0x01-0x7f range): the first
/// kRequestOpcodeCount rows of kOpcodeTable, which is kept in
/// wire-value order so requests precede the high-bit stream opcodes.
inline constexpr size_t kRequestOpcodeCount = 6;

/// Spec name of `opcode` ("PING"); "UNKNOWN" for unassigned values.
std::string_view OpcodeName(Opcode opcode);

/// True when `value` is an assigned opcode.
bool IsKnownOpcode(uint8_t value);

/// First byte of every response payload: the outcome of the request.
/// Values 0-10 mirror authidx::StatusCode one-for-one; values >= 100
/// are transport-level conditions with no Status equivalent.
enum class WireStatus : uint8_t {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kAlreadyExists = 3,
  kOutOfRange = 4,
  kCorruption = 5,
  kIOError = 6,
  kNotSupported = 7,
  kFailedPrecondition = 8,
  kResourceExhausted = 9,
  kInternal = 10,
  /// Admission control shed the request before execution: the server is
  /// overloaded, nothing ran, and the client should back off and retry.
  kRetryableBusy = 100,
  /// The frame failed CRC/length/version validation; the server closes
  /// the connection after sending this.
  kBadFrame = 101,
  /// The request opcode is not assigned in this protocol version.
  kUnknownOpcode = 102,
  /// A mutation (ADD) or replication subscription was sent to a node
  /// that is not the primary. Never retried and never failed over:
  /// clients surface it so the operator redirects writes.
  kNotPrimary = 103,
};

/// One row of the status table: the value and its spec name.
struct WireStatusInfo {
  /// Wire value.
  WireStatus status;
  /// Name used in docs/PROTOCOL.md.
  const char* name;
};

/// Every wire status, in wire-value order. docs/PROTOCOL.md's status
/// table is checked row-for-row against this array.
inline constexpr WireStatusInfo kWireStatusTable[] = {
    {WireStatus::kOk, "OK"},
    {WireStatus::kInvalidArgument, "INVALID_ARGUMENT"},
    {WireStatus::kNotFound, "NOT_FOUND"},
    {WireStatus::kAlreadyExists, "ALREADY_EXISTS"},
    {WireStatus::kOutOfRange, "OUT_OF_RANGE"},
    {WireStatus::kCorruption, "CORRUPTION"},
    {WireStatus::kIOError, "IO_ERROR"},
    {WireStatus::kNotSupported, "NOT_SUPPORTED"},
    {WireStatus::kFailedPrecondition, "FAILED_PRECONDITION"},
    {WireStatus::kResourceExhausted, "RESOURCE_EXHAUSTED"},
    {WireStatus::kInternal, "INTERNAL"},
    {WireStatus::kRetryableBusy, "RETRYABLE_BUSY"},
    {WireStatus::kBadFrame, "BAD_FRAME"},
    {WireStatus::kUnknownOpcode, "UNKNOWN_OPCODE"},
    {WireStatus::kNotPrimary, "NOT_PRIMARY"},
};

/// Spec name of `status` ("RETRYABLE_BUSY"); "UNKNOWN" for unassigned.
std::string_view WireStatusName(WireStatus status);

/// Frame-header flag bit: when set, the payload begins with a
/// kTraceContextBytes trace-context prefix (16-byte trace id + 1-byte
/// sampling decision); the logical payload follows it. Valid on
/// requests (client asks the server to trace) and responses (server
/// returns the trace id plus its span tree ahead of the response
/// payload). See docs/PROTOCOL.md "Trace context".
inline constexpr uint16_t kFlagTraceContext = 0x0001;

/// Every flag bit assigned in protocol version 1. DecodeFrame rejects
/// frames with any bit outside this mask set (kError, connection
/// closed) so unassigned bits stay meaningful for future versions.
inline constexpr uint16_t kKnownFlagsMask = kFlagTraceContext;

/// One row of the flag table: the bit and its spec name.
struct FlagInfo {
  /// Wire bit (a power of two).
  uint16_t bit;
  /// Name used in docs/PROTOCOL.md.
  const char* name;
};

/// Every assigned flag bit, in bit order. docs/PROTOCOL.md's flag
/// table is checked row-for-row against this array.
inline constexpr FlagInfo kFlagTable[] = {
    {kFlagTraceContext, "TRACE_CONTEXT"},
};

/// Bytes of the trace-context payload prefix: 16-byte trace id
/// (hi u64 LE, lo u64 LE) + 1-byte sampling decision (0 or 1).
inline constexpr size_t kTraceContextBytes = 17;

/// The trace-context extension carried when kFlagTraceContext is set:
/// the 128-bit correlation id plus whether the sender decided to
/// sample (record spans for) this request.
struct TraceContext {
  /// Correlation id; the zero sentinel means "no trace".
  obs::TraceId trace_id;
  /// True when the sender sampled this request; the receiver records
  /// spans and returns them on the response.
  bool sampled = false;
};

/// Appends the kTraceContextBytes prefix encoding `ctx` to `*dst`.
void EncodeTraceContext(const TraceContext& ctx, std::string* dst);

/// Strips a trace-context prefix from the front of `*payload` into
/// `*ctx`. Fails with Corruption when fewer than kTraceContextBytes
/// remain or the sampling byte is not 0/1.
Status DecodeTraceContext(std::string_view* payload, TraceContext* ctx);

/// Appends a span list (the server's lifecycle span tree) to `*dst`:
/// varint32 count, then per span a length-prefixed name, varint32
/// depth, varint64 start offset (ns relative to the first span's
/// start), varint64 duration ns. Start offsets keep the encoding
/// compact and clock-domain free: the receiver rebases onto its own
/// zero.
void EncodeTraceSpans(const std::vector<obs::Trace::Span>& spans,
                      std::string* dst);

/// Decodes a span list from the front of `*payload` (consuming it),
/// rebasing start times at zero. Fails with Corruption on truncation
/// or when the count exceeds the remaining payload.
Status DecodeTraceSpans(std::string_view* payload,
                        std::vector<obs::Trace::Span>* spans);

/// Maps an engine Status onto the wire (codes 0-10 map one-for-one).
WireStatus WireStatusFromStatus(const Status& status);

/// Inverse mapping for the client: reconstructs a Status carrying
/// `message`. Transport-level conditions map onto the closest engine
/// code — RETRYABLE_BUSY becomes ResourceExhausted (transient under
/// common/retry.h, so RetryWithBackoff retries it), BAD_FRAME becomes
/// InvalidArgument, UNKNOWN_OPCODE becomes NotSupported, NOT_PRIMARY
/// becomes FailedPrecondition (non-transient: never retried, never
/// failed over).
Status StatusFromWire(WireStatus status, std::string message);

/// Decoded fixed prologue of one frame (the length field is implicit
/// in DecodedFrame::frame_bytes).
struct FrameHeader {
  /// Protocol version (kProtocolVersion).
  uint8_t version = kProtocolVersion;
  /// Operation selector.
  Opcode opcode = Opcode::kPing;
  /// Assigned bits in kKnownFlagsMask (kFlagTraceContext); all other
  /// bits are reserved and must be zero in version 1.
  uint16_t flags = 0;
  /// Client-chosen correlation id, echoed verbatim in the response;
  /// what makes pipelining possible.
  uint64_t request_id = 0;
};

/// Appends one complete frame (header, payload, masked-CRC32C trailer)
/// to `*dst`.
void EncodeFrame(const FrameHeader& header, std::string_view payload,
                 std::string* dst);

/// Outcome of a DecodeFrame attempt against a byte buffer.
enum class DecodeOutcome {
  /// A complete, CRC-valid frame was decoded.
  kFrame,
  /// The buffer holds a valid prefix; read more bytes and retry.
  kNeedMore,
  /// The stream is unrecoverable (bad length/version/CRC/flags); the
  /// connection must be closed.
  kError,
};

/// A successfully decoded frame. `payload` aliases the input buffer and
/// is only valid until the buffer mutates.
struct DecodedFrame {
  /// Decoded prologue fields.
  FrameHeader header;
  /// Payload bytes (aliases the input buffer).
  std::string_view payload;
  /// Total encoded size, for consuming the frame from the buffer.
  size_t frame_bytes = 0;
};

/// Attempts to decode one frame from the front of `input`. On kError,
/// `*error` (may be null) receives the reason. Frames announcing more
/// than `max_frame_bytes` total are kError before their payload is
/// buffered.
DecodeOutcome DecodeFrame(std::string_view input, size_t max_frame_bytes,
                          DecodedFrame* out, Status* error);

/// QUERY request payload: the query text.
void EncodeQueryRequest(std::string_view query_text, std::string* dst);

/// Decodes a QUERY request payload (view aliases `payload`).
Status DecodeQueryRequest(std::string_view payload,
                          std::string_view* query_text);

/// ADD request payload: a batch of TSV entry lines.
void EncodeAddRequest(const std::vector<std::string>& tsv_lines,
                      std::string* dst);

/// Decodes an ADD request payload (views alias `payload`).
Status DecodeAddRequest(std::string_view payload,
                        std::vector<std::string_view>* tsv_lines);

/// One hit of a QUERY response, rendered server-side so the client
/// needs no catalog.
struct WireHit {
  /// Dense entry id on the server.
  EntryId id = 0;
  /// BM25 score when ranked by relevance; 0 in collation order.
  double score = 0.0;
  /// Author in index form ("Surname, Given, Suffix*").
  std::string author;
  /// Article title.
  std::string title;
  /// Rendered citation ("95:691 (1993)").
  std::string citation;
};

/// QUERY response body.
struct WireQueryResult {
  /// Matches before offset/limit.
  uint64_t total_matches = 0;
  /// query::PlanKind the server's planner chose, as its wire value.
  uint8_t plan = 0;
  /// The returned page of hits.
  std::vector<WireHit> hits;
};

/// Encodes a QUERY response body.
void EncodeQueryResult(const WireQueryResult& result, std::string* dst);

/// Decodes a QUERY response body.
Status DecodeQueryResult(std::string_view body, WireQueryResult* result);

/// STATS response body: catalog size counters.
struct WireStats {
  /// Total indexed entries.
  uint64_t entry_count = 0;
  /// Distinct author groups.
  uint64_t group_count = 0;
};

/// Encodes a STATS response body.
void EncodeStats(const WireStats& stats, std::string* dst);

/// Decodes a STATS response body.
Status DecodeStats(std::string_view body, WireStats* stats);

/// A WAL position on the wire: two fixed64s (wal file number, byte
/// offset). {0, 0} from a subscriber means "I have nothing — bootstrap
/// me with a snapshot".
struct WirePosition {
  /// WAL file number (strictly increasing across switches).
  uint64_t wal_number = 0;
  /// Byte offset into that WAL file.
  uint64_t offset = 0;
};

/// REPL_SUBSCRIBE request payload: the follower's durable cursor (next
/// unread WAL byte).
void EncodeReplSubscribe(const WirePosition& position, std::string* dst);

/// Decodes a REPL_SUBSCRIBE request payload.
Status DecodeReplSubscribe(std::string_view payload, WirePosition* position);

/// RESPONSE body answering an accepted REPL_SUBSCRIBE: how the stream
/// will start.
struct WireReplSubscribeAck {
  /// 0 = records from `start` onward; 1 = snapshot chunks first, then
  /// records from `start` (which is the snapshot's consistent point).
  uint8_t mode = 0;
  /// Position the stream starts (or resumes) from.
  WirePosition start;
};

/// Encodes a REPL_SUBSCRIBE ack body.
void EncodeReplSubscribeAck(const WireReplSubscribeAck& ack,
                            std::string* dst);
/// Decodes a REPL_SUBSCRIBE ack body (rejects unknown modes).
Status DecodeReplSubscribeAck(std::string_view body,
                              WireReplSubscribeAck* ack);

/// REPL_RECORDS stream payload: a batch of committed WAL records plus
/// the cursor after them and the primary's committed frontier (for lag
/// accounting).
struct WireReplRecords {
  /// Cursor after the last record in this batch.
  WirePosition end;
  /// The primary's committed frontier when the batch was read.
  WirePosition committed;
  /// Full WAL records (op byte + payload), in commit order.
  std::vector<std::string> records;
};

/// Encodes a REPL_RECORDS stream payload.
void EncodeReplRecords(const WireReplRecords& batch, std::string* dst);

/// Decodes a REPL_RECORDS payload. The record count is validated
/// against the remaining payload before any allocation (forged-count
/// defense), and every record is bounds-checked.
Status DecodeReplRecords(std::string_view payload, WireReplRecords* batch);

/// REPL_HEARTBEAT stream payload: primary liveness plus its committed
/// position and degradation state.
struct WireReplHeartbeat {
  /// The primary's committed frontier.
  WirePosition committed;
  /// 1 when the primary's storage engine is degraded (sticky background
  /// error): the follower should surface it and clients may prefer
  /// replicas for reads.
  uint8_t degraded = 0;
};

/// Encodes a REPL_HEARTBEAT stream payload.
void EncodeReplHeartbeat(const WireReplHeartbeat& hb, std::string* dst);
/// Decodes a REPL_HEARTBEAT payload (rejects non-boolean degraded).
Status DecodeReplHeartbeat(std::string_view payload, WireReplHeartbeat* hb);

/// REPL_SNAPSHOT stream payload: one chunk of a consistent iterator
/// snapshot bootstrapping an empty follower. The final chunk has
/// `done = 1`, zero pairs, and `resume`, the position record shipping
/// resumes from.
struct WireReplSnapshot {
  /// 1 on the final chunk (which carries zero pairs).
  uint8_t done = 0;
  /// Position record shipping resumes from after the snapshot.
  WirePosition resume;
  /// Key/value pairs, in key order.
  std::vector<std::pair<std::string, std::string>> pairs;
};

/// Encodes a REPL_SNAPSHOT stream payload.
void EncodeReplSnapshot(const WireReplSnapshot& chunk, std::string* dst);

/// Decodes a REPL_SNAPSHOT payload with the same forged-count defense
/// as DecodeReplRecords.
Status DecodeReplSnapshot(std::string_view payload, WireReplSnapshot* chunk);

/// Payload of every RESPONSE frame: a status, a human-readable message
/// (empty on OK), and an opcode-specific body (empty on error).
struct ResponsePayload {
  /// Outcome of the request.
  WireStatus status = WireStatus::kOk;
  /// Error detail; empty when status == kOk.
  std::string message;
  /// Opcode-specific body (e.g. an encoded WireQueryResult).
  std::string body;
};

/// Encodes a RESPONSE payload.
void EncodeResponsePayload(const ResponsePayload& response, std::string* dst);

/// Decodes a RESPONSE payload.
Status DecodeResponsePayload(std::string_view payload,
                             ResponsePayload* response);

}  // namespace authidx::net

#endif  // AUTHIDX_NET_PROTOCOL_H_
