#ifndef AUTHIDX_STORAGE_ENGINE_H_
#define AUTHIDX_STORAGE_ENGINE_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "authidx/common/env.h"
#include "authidx/common/mutex.h"
#include "authidx/common/thread_annotations.h"
#include "authidx/common/random.h"
#include "authidx/common/result.h"
#include "authidx/common/retry.h"
#include "authidx/obs/log.h"
#include "authidx/obs/metrics.h"
#include "authidx/storage/manifest.h"
#include "authidx/storage/memtable.h"
#include "authidx/storage/table.h"
#include "authidx/storage/cache.h"
#include "authidx/storage/wal.h"
#include "authidx/storage/write_batch.h"

namespace authidx::storage {

/// Tuning knobs for StorageEngine.
struct EngineOptions {
  /// Flush the memtable to a level-0 table once it holds this much.
  size_t memtable_bytes = 4 * 1024 * 1024;
  /// fdatasync the WAL on every write (durability vs throughput).
  /// Concurrent synced writers are group-committed: one leader appends
  /// and fsyncs the whole batch, so the cost amortizes across writers.
  bool sync_writes = false;
  /// Compact level 0 into level 1 when it accumulates this many runs.
  int l0_compaction_trigger = 4;
  /// Table-format knobs.
  size_t block_bytes = 4096;
  int restart_interval = 16;
  int bloom_bits_per_key = 10;
  /// Per-block LZ compression of table files.
  bool compress_blocks = false;
  /// Shared decoded-block cache; 0 disables it.
  size_t block_cache_bytes = 8 * 1024 * 1024;
  /// Filesystem to use (tests inject fault-injecting ones).
  Env* env = nullptr;  // nullptr = Env::Default().
  /// Registry to record WAL/flush/compaction/cache/Bloom metrics into
  /// (see docs/OBSERVABILITY.md); must outlive the engine. nullptr gives
  /// the engine a private registry, readable via metrics().
  obs::MetricsRegistry* metrics = nullptr;
  /// Logger for recovery/flush/compaction/error events (must outlive
  /// the engine). nullptr means obs::Logger::Disabled() — every event
  /// is dropped after one atomic load.
  obs::Logger* logger = nullptr;
  /// Degradation policy once a background error is sticky: by default
  /// reads keep serving the already-durable state (read-only
  /// degradation); paranoid mode halts reads too, returning the sticky
  /// error from Get/NewIterator until the store is reopened.
  bool paranoid_checks = false;
  /// Default for ReadOptions::verify_checksums on every read issued
  /// through this engine.
  bool verify_checksums = false;
  /// Retry budget for *transient* background failures (memtable flush,
  /// compaction): total attempts including the first. WAL append/sync
  /// failures are never retried-and-acknowledged — a write whose sync
  /// failed trips the sticky error immediately.
  int background_retry_attempts = 3;
  /// Backoff before the first background retry (doubled per retry).
  uint64_t retry_base_delay_us = 100;
  /// Saturation bound for the exponential backoff.
  uint64_t retry_max_delay_us = 10000;
  /// Replication-follower mode: the public write API (Put/Delete/Apply)
  /// fails with FailedPrecondition and the only accepted mutations are
  /// ApplyReplicated() records shipped from a primary. The engine still
  /// writes its own WAL (so follower crash recovery is local) and still
  /// flushes/compacts normally.
  bool apply_only = false;
};

/// Per-read options.
struct ReadOptions {
  /// Re-verify the block CRC32C against the bytes on disk for every
  /// block this read touches. Bypasses the decoded-block cache (a cache
  /// hit would short-circuit the disk read the verification is about),
  /// so verified reads trade speed for end-to-end integrity.
  bool verify_checksums = false;
};

/// Per-table result of VerifyIntegrity().
struct FileIntegrity {
  /// Table file number (maps to `<dir>/<number>.tbl`).
  uint64_t file_number = 0;
  /// LSM level the manifest places the file in.
  int level = 0;
  /// Entries successfully scanned before the first error (equals the
  /// manifest entry count when the file is clean).
  uint64_t entries_scanned = 0;
  /// OK, or the Corruption/IOError describing the damage.
  Status status;
};

/// Result of a full-store integrity scan (see
/// StorageEngine::VerifyIntegrity and docs/ROBUSTNESS.md).
struct IntegrityReport {
  /// OK when the on-disk manifest parses, passes its CRC, and matches
  /// the live file set.
  Status manifest_status;
  /// One entry per table file in the manifest.
  std::vector<FileIntegrity> files;
  /// Count of entries in `files` with a non-OK status.
  uint64_t corrupt_files = 0;

  /// True when the manifest and every table verified clean.
  bool clean() const { return manifest_status.ok() && corrupt_files == 0; }
};

/// Counters exposed for tests and benchmarks.
struct EngineStats {
  uint64_t puts = 0;
  uint64_t deletes = 0;
  uint64_t gets = 0;
  uint64_t flushes = 0;
  uint64_t compactions = 0;
  uint64_t wal_replayed_records = 0;
  uint64_t write_stalls = 0;
  bool wal_tail_corruption = false;
  int l0_files = 0;
  int l1_files = 0;
  size_t memtable_bytes = 0;
};

/// Embedded ordered key-value store: WAL + memtable + two-level LSM of
/// immutable sorted-run tables with Bloom filters. This is the
/// persistence substrate underneath AuthorIndex; keys are collation sort
/// keys or metadata keys, values are encoded entries.
///
/// Crash-safety contract: a Put/Delete is durable once it returns when
/// `sync_writes` is true; otherwise once Flush()/Close() returns.
/// Recovery replays the immutable-memtable WAL (if a flush was in
/// flight) and then the live WAL over the manifest state, tolerating a
/// torn tail in the live WAL.
///
/// Failure-handling contract (docs/ROBUSTNESS.md): any failed WAL
/// append/sync, memtable flush, compaction, or manifest save sets a
/// sticky *background error* — including failures on the background
/// maintenance thread. Transient flush/compaction failures are retried
/// with exponential backoff first (`background_retry_attempts`). While
/// the error is set the engine is *degraded*: every write fails fast
/// with the sticky status, while reads keep serving the already-durable
/// state (unless `paranoid_checks`). Reopening the store clears the
/// state.
///
/// Threading model (docs/ARCHITECTURE.md): fully thread-safe. One
/// engine mutex guards metadata and a LevelDB-style writer queue; the
/// queue's front writer group-commits every queued write with a single
/// WAL append pass + one fsync. Reads pin a snapshot of
/// {memtable, immutable memtable, table-file version} under the mutex
/// and then run lock-free. A single background thread runs flush and
/// compaction off the write path; writers that fill the memtable while
/// the previous one is still flushing stall (counted + logged) until
/// the flush lands. The entire protocol is machine-checked: every
/// mu_-protected member is AUTHIDX_GUARDED_BY(mu_) and every *Locked
/// helper carries AUTHIDX_REQUIRES(mu_), verified by Clang
/// -Wthread-safety in the `thread-safety` preset.
class StorageEngine {
 public:
  /// Opens (creating if needed) a store in directory `dir`.
  static Result<std::unique_ptr<StorageEngine>> Open(std::string dir,
                                                     EngineOptions options);

  ~StorageEngine();

  StorageEngine(const StorageEngine&) = delete;
  StorageEngine& operator=(const StorageEngine&) = delete;

  Status Put(std::string_view key, std::string_view value)
      AUTHIDX_EXCLUDES(mu_);
  Status Delete(std::string_view key) AUTHIDX_EXCLUDES(mu_);

  /// Applies a batch atomically (one WAL record; recovery replays all
  /// of it or none).
  Status Apply(const WriteBatch& batch) AUTHIDX_EXCLUDES(mu_);

  /// Applies one primary-originated WAL record verbatim on a follower
  /// opened with `EngineOptions::apply_only`. Goes through the normal
  /// writer queue (the record lands in this engine's own WAL, so the
  /// follower recovers locally after a crash). Re-applying a record the
  /// engine already holds is state-idempotent: the same keys get the
  /// same values. Rejects malformed records before queueing.
  Status ApplyReplicated(std::string_view record) AUTHIDX_EXCLUDES(mu_);

  /// The durable replication frontier: every WAL byte at or before this
  /// position has been appended, synced per the sync policy, and acked
  /// to its writer. A ReplicationSource must not ship bytes past it
  /// (they may belong to a write that will fail and never be acked).
  WalPosition CommittedWalPosition() const AUTHIDX_EXCLUDES(mu_);

  /// Retains WAL files numbered >= `wal_number` after their memtable
  /// flushes (normally a flushed WAL is deleted immediately) so a
  /// ReplicationSource can still read them. Passing UINT64_MAX (the
  /// initial state) releases every retained file. Lowering the pin is
  /// not meaningful; each call replaces the previous pin wholesale and
  /// deletes any retained file the new pin no longer covers.
  void PinWalsFrom(uint64_t wal_number) AUTHIDX_EXCLUDES(mu_);

  /// Builds a full WAL record holding a single put — used to synthesize
  /// shippable records from snapshot key/value pairs during follower
  /// bootstrap. The result is accepted by ApplyReplicated().
  static std::string EncodePutRecord(std::string_view key,
                                     std::string_view value);

  /// Decodes one WAL record, invoking `put` / `del` for each operation
  /// it holds (one for put/delete records, many for batch records).
  /// Corruption-safe: returns non-OK without invoking callbacks past
  /// the damage point.
  static Status ForEachRecordOp(
      std::string_view record,
      const std::function<void(std::string_view, std::string_view)>& put,
      const std::function<void(std::string_view)>& del);

  /// Point lookup across memtable and all levels (newest wins), using
  /// the engine-default ReadOptions (`EngineOptions::verify_checksums`).
  Result<std::optional<std::string>> Get(std::string_view key)
      AUTHIDX_EXCLUDES(mu_);

  /// Point lookup with explicit per-read options.
  Result<std::optional<std::string>> Get(std::string_view key,
                                         const ReadOptions& options)
      AUTHIDX_EXCLUDES(mu_);

  /// Ordered iterator over live (non-deleted) keys. The iterator pins
  /// the table files and memtables that existed at creation, so flushes
  /// and compactions never invalidate it; writes landing in the pinned
  /// memtable after creation may or may not be observed.
  std::unique_ptr<Iterator> NewIterator() AUTHIDX_EXCLUDES(mu_);

  /// Forces the memtable into a level-0 table (no-op when empty) and
  /// waits for the background flush to land.
  Status Flush() AUTHIDX_EXCLUDES(mu_);

  /// Merges all level-0 tables plus level 1 into a single level-1 run,
  /// dropping tombstones and shadowed versions. Runs on the background
  /// thread; this call waits for the result.
  Status Compact() AUTHIDX_EXCLUDES(mu_);

  /// Flushes and fsyncs everything, stops the background thread, and
  /// rejects all writes from the first moment of the call.
  Status Close() AUTHIDX_EXCLUDES(mu_);

  /// Creates a consistent point-in-time copy of the store in
  /// `checkpoint_dir` (created; must not already contain a store). The
  /// checkpoint flushes first, then copies the manifest and table files;
  /// it can be opened later as an independent StorageEngine.
  Status CreateCheckpoint(const std::string& checkpoint_dir)
      AUTHIDX_EXCLUDES(mu_);

  /// The sticky background error; OK while the engine is healthy. Set
  /// by the first failed WAL append/sync, flush, compaction, or
  /// manifest save (after retries for the transient subset) and never
  /// cleared except by reopening the store.
  Status background_error() const AUTHIDX_EXCLUDES(mu_);

  /// True once a background error is sticky: writes are rejected, reads
  /// serve the durable state (or also fail under `paranoid_checks`).
  /// Lock-free (one atomic load).
  bool degraded() const {
    return degraded_flag_.load(std::memory_order_acquire);
  }

  /// Scans the manifest and every table file, re-reading and
  /// CRC-verifying each block from disk (cache bypassed) and checking
  /// key order, key ranges, and entry counts against the manifest.
  /// Read-only: works on a degraded engine, reports per-file damage
  /// instead of failing on the first corrupt file, and increments
  /// `authidx_corrupt_blocks_total` for each damaged block it hits.
  /// Safe to run while writing; a concurrent compaction may surface as
  /// a transient missing-file error for a superseded table.
  Result<IntegrityReport> VerifyIntegrity() AUTHIDX_EXCLUDES(mu_);

  /// Consistent point-in-time snapshot of the counters.
  EngineStats stats() const AUTHIDX_EXCLUDES(mu_);
  const std::string& dir() const { return dir_; }
  const BlockCache& block_cache() const { return cache_; }
  /// The filesystem this engine was opened on (EngineOptions::env, or
  /// Env::Default()). Sidecar files that must share the engine's fault
  /// domain — e.g. the replication cursor — go through it.
  Env* env() const { return env_; }

  /// The registry this engine records into (the one from EngineOptions,
  /// or the engine-private one). Thread-safe to snapshot.
  const obs::MetricsRegistry& metrics() const { return *metrics_; }

 private:
  // Registry instruments for the storage hot paths (all owned by
  // *metrics_; registered once at construction, recorded into without
  // allocation afterwards).
  struct Instruments {
    obs::Counter* wal_appends = nullptr;
    obs::Counter* wal_append_bytes = nullptr;
    obs::Counter* wal_syncs = nullptr;
    obs::LatencyHistogram* wal_append_ns = nullptr;
    obs::LatencyHistogram* wal_sync_ns = nullptr;
    obs::Counter* flushes = nullptr;
    obs::Counter* flush_bytes = nullptr;
    obs::LatencyHistogram* flush_ns = nullptr;
    obs::Counter* compactions = nullptr;
    obs::Counter* compaction_bytes_in = nullptr;
    obs::Counter* compaction_bytes_out = nullptr;
    obs::LatencyHistogram* compaction_ns = nullptr;
    obs::Counter* cache_hits = nullptr;
    obs::Counter* cache_misses = nullptr;
    obs::Counter* cache_evictions = nullptr;
    obs::Gauge* cache_bytes = nullptr;
    obs::Counter* bloom_checks = nullptr;
    obs::Counter* bloom_negatives = nullptr;
    obs::Counter* puts = nullptr;
    obs::Counter* deletes = nullptr;
    obs::Counter* gets = nullptr;
    obs::LatencyHistogram* get_ns = nullptr;
    obs::Counter* recovery_records = nullptr;
    obs::Counter* bg_errors = nullptr;
    obs::Counter* flush_retries = nullptr;
    obs::Counter* compaction_retries = nullptr;
    obs::Counter* corrupt_blocks = nullptr;
    obs::Counter* gc_failures = nullptr;
    obs::Gauge* degraded = nullptr;
    obs::Counter* write_stalls = nullptr;
    obs::LatencyHistogram* write_stall_ns = nullptr;
    obs::Gauge* bg_queue_depth = nullptr;
    obs::Counter* group_commit_batches = nullptr;
    obs::Counter* group_commit_writes = nullptr;
  };

  // One queued write (or control sentinel) in the LevelDB-style writer
  // queue. Stack-allocated by the issuing thread, which blocks on `cv`
  // until it reaches the queue front or a leader commits it.
  //
  // Deliberately unannotated: these fields are protected by the
  // queue-front protocol, not by a single mutex the analysis could
  // name. `kind`/`record` are written before the Writer enters
  // `writers_` (single-owner), then read only by the queue-front
  // leader; `done`/`status` are written by the leader and read by the
  // owner, with every handoff made under mu_ (which `writers_` itself
  // is guarded by), so the mutex still orders all cross-thread access.
  struct Writer {
    enum class Kind { kWrite, kSeal, kBarrier };
    Kind kind = Kind::kWrite;
    std::string record;  // Full WAL record (op byte + payload).
    bool done = false;
    Status status;
    CondVar cv;
  };

  // One open table file with its manifest metadata.
  struct TableEntry {
    FileMeta meta;
    std::shared_ptr<TableReader> reader;
  };

  // Immutable snapshot of the table-file set. Readers pin it with a
  // shared_ptr and then never need the engine mutex again; flush and
  // compaction publish a fresh Version instead of mutating this one.
  struct Version {
    std::vector<TableEntry> level0;  // Newest first.
    std::vector<TableEntry> level1;  // Sorted by smallest_key.
  };

  // Completion slot for a Compact() call waiting on the bg thread.
  struct ManualCompaction {
    bool done = false;
    Status status;
  };

  StorageEngine(std::string dir, EngineOptions options);

  void RegisterInstruments();
  void StartBackgroundThread();
  void BackgroundThreadMain() AUTHIDX_EXCLUDES(mu_);
  bool HasBackgroundWorkLocked() const AUTHIDX_REQUIRES(mu_);
  void UpdateQueueDepthLocked() AUTHIDX_REQUIRES(mu_);

  Status ReplayWalIntoMemtable(uint64_t wal_number) AUTHIDX_REQUIRES(mu_);
  Status OpenTables() AUTHIDX_REQUIRES(mu_);
  // Touches only the passed memtable and out-params — no engine state —
  // so it runs both under mu_ (recovery) and without it (the group
  // leader applying committed records to a pinned memtable).
  Status ApplyRecordToMemtable(MemTable& mem, std::string_view record,
                               uint64_t* puts, uint64_t* deletes);
  // Enqueues one write, waits for commit (as leader or group member).
  Status QueueWrite(std::string record) AUTHIDX_EXCLUDES(mu_);
  // Leader-side: stalls/seals until the memtable can take the write.
  // Waits on bg_done_cv_ (releasing mu_) while stalled.
  Status MakeRoomForWriteLocked() AUTHIDX_REQUIRES(mu_);
  Result<FileMeta> WriteTableFromIterator(Iterator* it, int level,
                                          bool drop_tombstones,
                                          uint64_t file_number);
  Result<std::shared_ptr<TableReader>> OpenTableReader(uint64_t file_number);
  // Rebuilds the published Version from manifest_ + readers_.
  void RebuildVersionLocked() AUTHIDX_REQUIRES(mu_);

  // --- failure handling (docs/ROBUSTNESS.md) ---
  // Non-OK when writes must be rejected (closed or degraded).
  Status WritableStatusLocked() const AUTHIDX_REQUIRES(mu_);
  // Records the first background error; later calls are no-ops. Wakes
  // every stalled writer and pending waiter.
  void SetBackgroundErrorLocked(std::string_view op, const Status& status)
      AUTHIDX_REQUIRES(mu_);
  // Runs `body` (which may unlock/relock mu_ internally in balanced
  // pairs) under the transient-retry policy, releasing the mutex across
  // backoff sleeps; on final failure the error becomes sticky.
  // `retry_counter` counts each retry. `body` is a std::function the
  // analysis cannot see into: its body must start with
  // mu_.AssertHeld().
  Status RunRetriesLocked(const char* op, obs::Counter* retry_counter,
                          const std::function<Status()>& body)
      AUTHIDX_REQUIRES(mu_);
  // Seals the memtable: stages a fresh WAL plus a manifest recording
  // the handoff (imm_wal_number = old WAL), commits only after the
  // manifest save. Caller must be the queue front (no WAL I/O races).
  Status SealMemtableLocked() AUTHIDX_REQUIRES(mu_);
  // Opens the very first WAL of a store whose recovery left nothing to
  // flush. Single-threaded open path, mu_ held.
  Status SwitchToFreshWalLocked() AUTHIDX_REQUIRES(mu_);
  // Writes the sealed memtable to a level-0 table. Releases mu_ across
  // the table write; commits (manifest save + state swap) with it held.
  // Retry-safe: a failed attempt leaves state unchanged.
  Status FlushImmLocked() AUTHIDX_REQUIRES(mu_);
  // Merges all runs into one level-1 table. Same locking discipline and
  // retry-safety as FlushImmLocked.
  Status CompactImplLocked() AUTHIDX_REQUIRES(mu_);
  // Queues an obsolete file for removal and sweeps the queue.
  // Best-effort: a failed unlink is logged + counted, never fatal.
  void ScheduleFileForRemovalLocked(std::string path) AUTHIDX_REQUIRES(mu_);
  void RemoveObsoleteFilesLocked() AUTHIDX_REQUIRES(mu_);
  // Queues every engine-named file (NNNNNN.tbl / NNNNNN.wal) the
  // manifest does not reference — orphans left by failed background
  // attempts or a crash before their unlink. Called at open, where the
  // in-memory removal queue of the previous process is lost.
  void SweepUnreferencedFilesLocked() AUTHIDX_REQUIRES(mu_);

  std::string dir_;
  EngineOptions options_;
  Env* env_;
  std::unique_ptr<obs::MetricsRegistry> owned_metrics_;
  obs::MetricsRegistry* metrics_;  // == options.metrics or owned_metrics_.
  obs::Logger* log_;  // == options.logger or Logger::Disabled().
  Instruments m_;
  BlockCache cache_;

  // One mutex guards all metadata below plus the writer queue. Reads
  // hold it only long enough to pin {mem_, imm_, version_}; writers
  // release it during WAL I/O (queue-front discipline makes that safe);
  // background jobs release it during table writes.
  mutable Mutex mu_;
  CondVar bg_cv_;       // Wakes the background thread.
  CondVar bg_done_cv_;  // Flush/compaction landed; stalls.
  std::deque<Writer*> writers_ AUTHIDX_GUARDED_BY(mu_);

  Manifest manifest_ AUTHIDX_GUARDED_BY(mu_);
  std::shared_ptr<MemTable> mem_ AUTHIDX_GUARDED_BY(mu_);
  // Sealed, being flushed; may be null.
  std::shared_ptr<MemTable> imm_ AUTHIDX_GUARDED_BY(mu_);
  std::unique_ptr<WalWriter> wal_ AUTHIDX_GUARDED_BY(mu_);
  // Open readers keyed by file number (ownership registry).
  std::vector<std::pair<uint64_t, std::shared_ptr<TableReader>>> readers_
      AUTHIDX_GUARDED_BY(mu_);
  // Published table-file snapshot; replaced wholesale on commit.
  std::shared_ptr<const Version> version_ AUTHIDX_GUARDED_BY(mu_);
  EngineStats stats_ AUTHIDX_GUARDED_BY(mu_);
  // Close() barrier passed: no further writes.
  bool closing_ AUTHIDX_GUARDED_BY(mu_) = false;
  bool closed_ AUTHIDX_GUARDED_BY(mu_) = false;
  // Background thread exit flag.
  bool shutdown_ AUTHIDX_GUARDED_BY(mu_) = false;
  // Sticky background error; OK while healthy. See background_error().
  Status bg_error_ AUTHIDX_GUARDED_BY(mu_);
  std::atomic<bool> degraded_flag_{false};
  ManualCompaction* manual_compaction_ AUTHIDX_GUARDED_BY(mu_) = nullptr;
  // Jitter source for retry backoff (deterministic seed: backoff
  // spreading needs no entropy, and reproducible tests matter more).
  Random retry_rng_ AUTHIDX_GUARDED_BY(mu_){0x9E3779B97F4A7C15ULL};
  // Obsolete files whose removal failed; retried after the next
  // successful flush/compaction.
  std::vector<std::string> pending_removals_ AUTHIDX_GUARDED_BY(mu_);
  // Replication frontier: advanced by the group-commit leader after a
  // successful (synced) commit, reset to {new_wal, 0} on WAL switch.
  WalPosition committed_pos_ AUTHIDX_GUARDED_BY(mu_);
  // WAL files numbered >= wal_pin_ are retained after flush instead of
  // deleted, parked in retained_wals_ until the pin advances past them.
  // UINT64_MAX (the default) pins nothing. Pins do not survive reopen:
  // SweepUnreferencedFilesLocked deletes retained WALs at the next
  // open, and a follower whose cursor file is gone re-bootstraps.
  uint64_t wal_pin_ AUTHIDX_GUARDED_BY(mu_) = UINT64_MAX;
  std::vector<uint64_t> retained_wals_ AUTHIDX_GUARDED_BY(mu_);
  // Unannotated by design: written once by Open() before the engine is
  // shared, joined by the single Close() winner (the closing_ barrier
  // elects it under mu_). Never touched concurrently.
  std::thread bg_thread_;
};

}  // namespace authidx::storage

#endif  // AUTHIDX_STORAGE_ENGINE_H_
