#ifndef AUTHIDX_STORAGE_ENGINE_H_
#define AUTHIDX_STORAGE_ENGINE_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "authidx/common/env.h"
#include "authidx/common/result.h"
#include "authidx/obs/log.h"
#include "authidx/obs/metrics.h"
#include "authidx/storage/manifest.h"
#include "authidx/storage/memtable.h"
#include "authidx/storage/table.h"
#include "authidx/storage/cache.h"
#include "authidx/storage/wal.h"
#include "authidx/storage/write_batch.h"

namespace authidx::storage {

/// Tuning knobs for StorageEngine.
struct EngineOptions {
  /// Flush the memtable to a level-0 table once it holds this much.
  size_t memtable_bytes = 4 * 1024 * 1024;
  /// fdatasync the WAL on every write (durability vs throughput).
  bool sync_writes = false;
  /// Compact level 0 into level 1 when it accumulates this many runs.
  int l0_compaction_trigger = 4;
  /// Table-format knobs.
  size_t block_bytes = 4096;
  int restart_interval = 16;
  int bloom_bits_per_key = 10;
  /// Per-block LZ compression of table files.
  bool compress_blocks = false;
  /// Shared decoded-block cache; 0 disables it.
  size_t block_cache_bytes = 8 * 1024 * 1024;
  /// Filesystem to use (tests inject fault-injecting ones).
  Env* env = nullptr;  // nullptr = Env::Default().
  /// Registry to record WAL/flush/compaction/cache/Bloom metrics into
  /// (see docs/OBSERVABILITY.md); must outlive the engine. nullptr gives
  /// the engine a private registry, readable via metrics().
  obs::MetricsRegistry* metrics = nullptr;
  /// Logger for recovery/flush/compaction/error events (must outlive
  /// the engine). nullptr means obs::Logger::Disabled() — every event
  /// is dropped after one atomic load.
  obs::Logger* logger = nullptr;
};

/// Counters exposed for tests and benchmarks.
struct EngineStats {
  uint64_t puts = 0;
  uint64_t deletes = 0;
  uint64_t gets = 0;
  uint64_t flushes = 0;
  uint64_t compactions = 0;
  uint64_t wal_replayed_records = 0;
  bool wal_tail_corruption = false;
  int l0_files = 0;
  int l1_files = 0;
  size_t memtable_bytes = 0;
};

/// Embedded ordered key-value store: WAL + memtable + two-level LSM of
/// immutable sorted-run tables with Bloom filters. This is the
/// persistence substrate underneath AuthorIndex; keys are collation sort
/// keys or metadata keys, values are encoded entries.
///
/// Crash-safety contract: a Put/Delete is durable once it returns when
/// `sync_writes` is true; otherwise once Flush()/Close() returns.
/// Recovery replays the newest WAL over the manifest state and tolerates
/// a torn tail.
///
/// Single-writer; not internally synchronized.
class StorageEngine {
 public:
  /// Opens (creating if needed) a store in directory `dir`.
  static Result<std::unique_ptr<StorageEngine>> Open(std::string dir,
                                                     EngineOptions options);

  ~StorageEngine();

  StorageEngine(const StorageEngine&) = delete;
  StorageEngine& operator=(const StorageEngine&) = delete;

  Status Put(std::string_view key, std::string_view value);
  Status Delete(std::string_view key);

  /// Applies a batch atomically (one WAL record; recovery replays all
  /// of it or none).
  Status Apply(const WriteBatch& batch);

  /// Point lookup across memtable and all levels (newest wins).
  Result<std::optional<std::string>> Get(std::string_view key);

  /// Ordered iterator over live (non-deleted) keys. Snapshot semantics
  /// are "as of iterator creation for flushed data, live for memtable";
  /// callers in this codebase never mutate while iterating.
  std::unique_ptr<Iterator> NewIterator();

  /// Forces the memtable into a level-0 table (no-op when empty).
  Status Flush();

  /// Merges all level-0 tables plus level 1 into a single level-1 run,
  /// dropping tombstones and shadowed versions.
  Status Compact();

  /// Flushes and fsyncs everything.
  Status Close();

  /// Creates a consistent point-in-time copy of the store in
  /// `checkpoint_dir` (created; must not already contain a store). The
  /// checkpoint flushes first, then copies the manifest and table files;
  /// it can be opened later as an independent StorageEngine.
  Status CreateCheckpoint(const std::string& checkpoint_dir);

  const EngineStats& stats() const { return stats_; }
  const std::string& dir() const { return dir_; }
  const BlockCache& block_cache() const { return cache_; }

  /// The registry this engine records into (the one from EngineOptions,
  /// or the engine-private one). Thread-safe to snapshot.
  const obs::MetricsRegistry& metrics() const { return *metrics_; }

 private:
  // Registry instruments for the storage hot paths (all owned by
  // *metrics_; registered once at construction, recorded into without
  // allocation afterwards).
  struct Instruments {
    obs::Counter* wal_appends = nullptr;
    obs::Counter* wal_append_bytes = nullptr;
    obs::Counter* wal_syncs = nullptr;
    obs::LatencyHistogram* wal_append_ns = nullptr;
    obs::LatencyHistogram* wal_sync_ns = nullptr;
    obs::Counter* flushes = nullptr;
    obs::Counter* flush_bytes = nullptr;
    obs::LatencyHistogram* flush_ns = nullptr;
    obs::Counter* compactions = nullptr;
    obs::Counter* compaction_bytes_in = nullptr;
    obs::Counter* compaction_bytes_out = nullptr;
    obs::LatencyHistogram* compaction_ns = nullptr;
    obs::Counter* cache_hits = nullptr;
    obs::Counter* cache_misses = nullptr;
    obs::Counter* cache_evictions = nullptr;
    obs::Gauge* cache_bytes = nullptr;
    obs::Counter* bloom_checks = nullptr;
    obs::Counter* bloom_negatives = nullptr;
    obs::Counter* puts = nullptr;
    obs::Counter* deletes = nullptr;
    obs::Counter* gets = nullptr;
    obs::LatencyHistogram* get_ns = nullptr;
    obs::Counter* recovery_records = nullptr;
  };

  StorageEngine(std::string dir, EngineOptions options);

  void RegisterInstruments();
  Status AppendWalRecord(std::string_view record);
  Status ReplayWalIntoMemtable(uint64_t wal_number);
  Status OpenTables();
  Status SwitchToFreshWal();
  Status WriteRecord(char op, std::string_view key, std::string_view value);
  Status MaybeFlushAndCompact();
  Result<FileMeta> WriteTableFromIterator(Iterator* it, int level,
                                          bool drop_tombstones);

  std::string dir_;
  EngineOptions options_;
  Env* env_;
  std::unique_ptr<obs::MetricsRegistry> owned_metrics_;
  obs::MetricsRegistry* metrics_;  // == options.metrics or owned_metrics_.
  obs::Logger* log_;  // == options.logger or Logger::Disabled().
  Instruments m_;
  BlockCache cache_;
  Manifest manifest_;
  std::unique_ptr<MemTable> memtable_;
  std::unique_ptr<WalWriter> wal_;
  // Open readers keyed by file number.
  std::vector<std::pair<uint64_t, std::unique_ptr<TableReader>>> readers_;
  EngineStats stats_;
  bool closed_ = false;
};

}  // namespace authidx::storage

#endif  // AUTHIDX_STORAGE_ENGINE_H_
