#include "authidx/storage/engine.h"

#include <algorithm>
#include <chrono>
#include <thread>

#include "authidx/common/coding.h"
#include "authidx/obs/trace.h"

namespace authidx::storage {

namespace {

constexpr char kOpPut = 'P';
constexpr char kOpDelete = 'D';
constexpr char kOpBatch = 'B';

// Cap on the WAL bytes one group-commit leader writes on behalf of the
// writers queued behind it; keeps worst-case leader latency bounded.
constexpr size_t kMaxGroupCommitBytes = 1 << 20;

uint64_t NowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

// Iterator adapter that strips value tags and skips tombstones, turning
// the raw merged stream into a live-keys view. `pins` keeps the
// memtables/table-file snapshot backing the children alive for the
// iterator's lifetime, so flushes and compactions never invalidate it.
class LiveIterator final : public Iterator {
 public:
  LiveIterator(std::unique_ptr<Iterator> base,
               std::vector<std::shared_ptr<const void>> pins)
      : base_(std::move(base)), pins_(std::move(pins)) {}

  bool Valid() const override { return base_->Valid(); }
  void SeekToFirst() override {
    base_->SeekToFirst();
    SkipTombstones();
  }
  void Seek(std::string_view target) override {
    base_->Seek(target);
    SkipTombstones();
  }
  void Next() override {
    base_->Next();
    SkipTombstones();
  }
  std::string_view key() const override { return base_->key(); }
  std::string_view value() const override {
    return MemTable::StripTag(base_->value());
  }
  Status status() const override { return base_->status(); }

 private:
  void SkipTombstones() {
    while (base_->Valid() && MemTable::IsTombstoneValue(base_->value())) {
      base_->Next();
    }
  }

  std::unique_ptr<Iterator> base_;
  std::vector<std::shared_ptr<const void>> pins_;
};

// Matches `<digits>.<ext>` (the TableFileName/WalFileName shapes) and
// extracts the number; anything else — MANIFEST, foreign files — is
// left alone by the sweep.
bool ParseNumberedFile(const std::string& name, std::string_view ext,
                       uint64_t* number) {
  size_t dot = name.rfind('.');
  if (dot == std::string::npos || dot == 0 ||
      std::string_view(name).substr(dot) != ext) {
    return false;
  }
  uint64_t value = 0;
  for (size_t i = 0; i < dot; ++i) {
    if (name[i] < '0' || name[i] > '9') {
      return false;
    }
    value = value * 10 + static_cast<uint64_t>(name[i] - '0');
  }
  *number = value;
  return true;
}

}  // namespace

StorageEngine::StorageEngine(std::string dir, EngineOptions options)
    : dir_(std::move(dir)),
      options_(options),
      env_(options.env != nullptr ? options.env : Env::Default()),
      owned_metrics_(options.metrics == nullptr
                         ? std::make_unique<obs::MetricsRegistry>()
                         : nullptr),
      metrics_(options.metrics != nullptr ? options.metrics
                                          : owned_metrics_.get()),
      log_(options.logger != nullptr ? options.logger
                                     : obs::Logger::Disabled()),
      cache_(options.block_cache_bytes),
      mem_(std::make_shared<MemTable>()),
      version_(std::make_shared<const Version>()) {
  RegisterInstruments();
}

void StorageEngine::RegisterInstruments() {
  m_.wal_appends = metrics_->RegisterCounter(
      "authidx_wal_appends_total", "WAL records appended");
  m_.wal_append_bytes = metrics_->RegisterCounter(
      "authidx_wal_append_bytes_total", "WAL record payload bytes appended");
  m_.wal_syncs = metrics_->RegisterCounter(
      "authidx_wal_syncs_total", "WAL fdatasync calls");
  m_.wal_append_ns = metrics_->RegisterLatencyHistogram(
      "authidx_wal_append_duration_ns", "Latency of one WAL append, ns");
  m_.wal_sync_ns = metrics_->RegisterLatencyHistogram(
      "authidx_wal_sync_duration_ns", "Latency of one WAL fdatasync, ns");
  m_.flushes = metrics_->RegisterCounter(
      "authidx_memtable_flushes_total", "Memtable flushes to level-0 tables");
  m_.flush_bytes = metrics_->RegisterCounter(
      "authidx_memtable_flush_bytes_total",
      "Approximate memtable bytes at each flush");
  m_.flush_ns = metrics_->RegisterLatencyHistogram(
      "authidx_memtable_flush_duration_ns", "Latency of one flush, ns");
  m_.compactions = metrics_->RegisterCounter(
      "authidx_compactions_total", "Level-0 -> level-1 compactions");
  m_.compaction_bytes_in = metrics_->RegisterCounter(
      "authidx_compaction_bytes_in_total",
      "Table-file bytes read by compactions");
  m_.compaction_bytes_out = metrics_->RegisterCounter(
      "authidx_compaction_bytes_out_total",
      "Table-file bytes written by compactions");
  m_.compaction_ns = metrics_->RegisterLatencyHistogram(
      "authidx_compaction_duration_ns", "Latency of one compaction, ns");
  m_.cache_hits = metrics_->RegisterCounter(
      "authidx_block_cache_hits_total", "Block cache hits");
  m_.cache_misses = metrics_->RegisterCounter(
      "authidx_block_cache_misses_total", "Block cache misses");
  m_.cache_evictions = metrics_->RegisterCounter(
      "authidx_block_cache_evictions_total", "Block cache LRU evictions");
  m_.cache_bytes = metrics_->RegisterGauge(
      "authidx_block_cache_bytes", "Block cache bytes currently resident");
  m_.bloom_checks = metrics_->RegisterCounter(
      "authidx_bloom_checks_total", "Bloom filter consultations");
  m_.bloom_negatives = metrics_->RegisterCounter(
      "authidx_bloom_negatives_total",
      "Bloom filter definite-absent short-circuits");
  m_.puts = metrics_->RegisterCounter(
      "authidx_storage_puts_total", "Engine Put operations (incl. batched)");
  m_.deletes = metrics_->RegisterCounter(
      "authidx_storage_deletes_total",
      "Engine Delete operations (incl. batched)");
  m_.gets = metrics_->RegisterCounter(
      "authidx_storage_gets_total", "Engine point lookups");
  m_.get_ns = metrics_->RegisterLatencyHistogram(
      "authidx_storage_get_duration_ns", "Latency of one point lookup, ns");
  m_.recovery_records = metrics_->RegisterCounter(
      "authidx_engine_recovery_records_total",
      "WAL records replayed during recovery");
  m_.bg_errors = metrics_->RegisterCounter(
      "authidx_bg_errors_total",
      "Background errors that tripped degraded mode");
  m_.flush_retries = metrics_->RegisterCounter(
      "authidx_retries_total{op=\"flush\"}",
      "Transient memtable-flush failures retried with backoff");
  m_.compaction_retries = metrics_->RegisterCounter(
      "authidx_retries_total{op=\"compaction\"}",
      "Transient compaction failures retried with backoff");
  m_.corrupt_blocks = metrics_->RegisterCounter(
      "authidx_corrupt_blocks_total",
      "Table blocks failing CRC, framing, or decompression checks");
  m_.gc_failures = metrics_->RegisterCounter(
      "authidx_gc_failures_total",
      "Obsolete-file removals that failed (retried after the next "
      "successful flush or compaction)");
  m_.degraded = metrics_->RegisterGauge(
      "authidx_degraded",
      "1 while a sticky background error has the engine degraded");
  m_.write_stalls = metrics_->RegisterCounter(
      "authidx_write_stalls_total",
      "Writes stalled because the previous memtable was still flushing");
  m_.write_stall_ns = metrics_->RegisterLatencyHistogram(
      "authidx_write_stall_duration_ns",
      "Time one stalled write spent waiting for the flush to land, ns");
  m_.bg_queue_depth = metrics_->RegisterGauge(
      "authidx_bg_queue_depth",
      "Background jobs pending (sealed memtable, manual or triggered "
      "compaction)");
  m_.group_commit_batches = metrics_->RegisterCounter(
      "authidx_group_commit_batches_total",
      "Writer-queue group commits (one leader WAL pass each)");
  m_.group_commit_writes = metrics_->RegisterCounter(
      "authidx_group_commit_writes_total",
      "Writes committed through group commit (batches * mean group size)");
  cache_.BindMetrics(m_.cache_hits, m_.cache_misses, m_.cache_evictions,
                     m_.cache_bytes);
}

Status StorageEngine::WritableStatusLocked() const {
  if (closed_ || closing_) {
    return Status::FailedPrecondition("engine closed");
  }
  if (!bg_error_.ok()) {
    return bg_error_.WithContext("write rejected: engine degraded");
  }
  return Status::OK();
}

void StorageEngine::SetBackgroundErrorLocked(std::string_view op,
                                             const Status& status) {
  if (status.ok() || !bg_error_.ok()) {
    return;  // First error wins; reopening the store is the only reset.
  }
  bg_error_ = status.WithContext(op);
  degraded_flag_.store(true, std::memory_order_release);
  m_.bg_errors->Inc();
  m_.degraded->Set(1);
  log_->Log(obs::LogLevel::kError, "engine_degraded",
            {{"op", op},
             {"status", status.message()},
             {"paranoid", options_.paranoid_checks}});
  // Every stalled writer and flush/compaction waiter must re-evaluate:
  // the work they are waiting for will never complete now.
  bg_cv_.NotifyAll();
  bg_done_cv_.NotifyAll();
}

Status StorageEngine::RunRetriesLocked(const char* op,
                                       obs::Counter* retry_counter,
                                       const std::function<Status()>& body) {
  RetryPolicy policy;
  policy.max_attempts = options_.background_retry_attempts;
  policy.base_delay_us = options_.retry_base_delay_us;
  policy.max_delay_us = options_.retry_max_delay_us;
  Status s;
  for (int attempt = 1;; ++attempt) {
    s = body();
    if (s.ok() || attempt >= policy.max_attempts || !IsTransientError(s)) {
      break;
    }
    uint64_t delay_us = RetryBackoffDelayUs(policy, attempt, &retry_rng_);
    retry_counter->Inc();
    log_->Log(obs::LogLevel::kWarn, "retry_attempt",
              {{"op", op},
               {"attempt", attempt},
               {"status", s.message()},
               {"backoff_us", delay_us}});
    if (delay_us > 0) {
      // Never sleep while holding the engine mutex: reads and the
      // background thread keep running through the backoff.
      mu_.Unlock();
      std::this_thread::sleep_for(std::chrono::microseconds(delay_us));
      mu_.Lock();
    }
  }
  if (!s.ok()) {
    SetBackgroundErrorLocked(op, s);
  }
  return s;
}

void StorageEngine::ScheduleFileForRemovalLocked(std::string path) {
  if (std::find(pending_removals_.begin(), pending_removals_.end(), path) ==
      pending_removals_.end()) {
    pending_removals_.push_back(std::move(path));
  }
}

void StorageEngine::RemoveObsoleteFilesLocked() {
  std::vector<std::string> still_pending;
  for (std::string& path : pending_removals_) {
    if (!env_->FileExists(path)) {
      continue;
    }
    Status s = env_->RemoveFile(path);
    if (!s.ok()) {
      // Best-effort: disk-space leak, not a correctness problem. Count
      // and log it so stuck files surface, and retry after the next
      // successful flush/compaction.
      m_.gc_failures->Inc();
      log_->Log(obs::LogLevel::kWarn, "gc_failed",
                {{"path", path}, {"status", s.message()}});
      still_pending.push_back(std::move(path));
    }
  }
  pending_removals_ = std::move(still_pending);
}

void StorageEngine::SweepUnreferencedFilesLocked() {
  Result<std::vector<std::string>> listing = env_->ListDir(dir_);
  if (!listing.ok()) {
    return;  // Best-effort, like every other GC path.
  }
  for (const std::string& name : *listing) {
    uint64_t number = 0;
    if (ParseNumberedFile(name, ".tbl", &number)) {
      if (std::none_of(manifest_.files.begin(), manifest_.files.end(),
                       [&](const FileMeta& f) {
                         return f.file_number == number;
                       })) {
        ScheduleFileForRemovalLocked(TableFileName(dir_, number));
      }
    } else if (ParseNumberedFile(name, ".wal", &number)) {
      if (number != manifest_.wal_number &&
          number != manifest_.imm_wal_number) {
        ScheduleFileForRemovalLocked(WalFileName(dir_, number));
      }
    }
  }
}

void StorageEngine::RebuildVersionLocked() {
  auto v = std::make_shared<Version>();
  stats_.l0_files = 0;
  stats_.l1_files = 0;
  for (int level = 0; level <= 1; ++level) {
    for (const FileMeta& meta : manifest_.LevelFiles(level)) {
      auto it = std::find_if(readers_.begin(), readers_.end(),
                             [&](const auto& r) {
                               return r.first == meta.file_number;
                             });
      if (it == readers_.end()) {
        continue;  // Unreachable: every commit registers its reader first.
      }
      (level == 0 ? v->level0 : v->level1).push_back({meta, it->second});
      (level == 0 ? stats_.l0_files : stats_.l1_files) += 1;
    }
  }
  version_ = std::move(v);
}

void StorageEngine::UpdateQueueDepthLocked() {
  int depth = (imm_ != nullptr ? 1 : 0) +
              (manual_compaction_ != nullptr ? 1 : 0) +
              (options_.l0_compaction_trigger > 0 &&
                       stats_.l0_files >= options_.l0_compaction_trigger
                   ? 1
                   : 0);
  m_.bg_queue_depth->Set(depth);
}

bool StorageEngine::HasBackgroundWorkLocked() const {
  if (manual_compaction_ != nullptr) {
    return true;  // Processed even when degraded, so the waiter never hangs.
  }
  if (!bg_error_.ok()) {
    return false;
  }
  return imm_ != nullptr ||
         (options_.l0_compaction_trigger > 0 &&
          stats_.l0_files >= options_.l0_compaction_trigger);
}

StorageEngine::~StorageEngine() {
  bool need_close;
  {
    MutexLock lock(mu_);
    need_close = !closed_;
  }
  if (need_close) {
    // Destructors cannot propagate errors; callers wanting the close
    // status must call Close() explicitly before destruction.
    Close().IgnoreError();
  }
}

void StorageEngine::StartBackgroundThread() {
  bg_thread_ = std::thread(&StorageEngine::BackgroundThreadMain, this);
}

void StorageEngine::BackgroundThreadMain() {
  MutexLock lock(mu_);
  while (true) {
    while (!shutdown_ && !HasBackgroundWorkLocked()) {
      bg_cv_.Wait(mu_);
    }
    if (shutdown_) {
      if (manual_compaction_ != nullptr) {
        // Close() won the race; the waiter still gets a definite answer.
        manual_compaction_->status =
            Status::FailedPrecondition("engine closed");
        manual_compaction_->done = true;
        manual_compaction_ = nullptr;
        bg_done_cv_.NotifyAll();
      }
      return;
    }
    if (imm_ != nullptr && bg_error_.ok()) {
      RunRetriesLocked("flush", m_.flush_retries, [this] {
        mu_.AssertHeld();
        return FlushImmLocked();
      }).IgnoreError();
    } else if (manual_compaction_ != nullptr) {
      ManualCompaction* mc = manual_compaction_;
      Status s = bg_error_;
      if (s.ok()) {
        s = RunRetriesLocked("compaction", m_.compaction_retries, [this] {
          mu_.AssertHeld();
          return CompactImplLocked();
        });
      } else {
        s = s.WithContext("compaction skipped: engine degraded");
      }
      mc->status = std::move(s);
      mc->done = true;
      manual_compaction_ = nullptr;
    } else if (bg_error_.ok() && options_.l0_compaction_trigger > 0 &&
               stats_.l0_files >= options_.l0_compaction_trigger) {
      RunRetriesLocked("compaction", m_.compaction_retries, [this] {
        mu_.AssertHeld();
        return CompactImplLocked();
      }).IgnoreError();
    }
    UpdateQueueDepthLocked();
    bg_done_cv_.NotifyAll();
  }
}

Result<std::unique_ptr<StorageEngine>> StorageEngine::Open(
    std::string dir, EngineOptions options) {
  auto engine = std::unique_ptr<StorageEngine>(
      new StorageEngine(std::move(dir), options));
  AUTHIDX_RETURN_NOT_OK(engine->env_->CreateDirIfMissing(engine->dir_));
  Result<Manifest> manifest = Manifest::Load(engine->env_, engine->dir_);
  const bool had_manifest = manifest.ok();
  // Recovery is single-threaded (the background thread starts last and
  // immediately blocks on mu_, which this scope holds until return), so
  // holding the mutex across the WAL replay I/O costs nothing — and it
  // keeps every touch of guarded state on a path the analysis proves.
  MutexLock lock(engine->mu_);
  if (manifest.ok()) {
    engine->manifest_ = std::move(manifest).value();
  } else if (!manifest.status().IsNotFound()) {
    return manifest.status().WithContext("loading manifest");
  }
  AUTHIDX_RETURN_NOT_OK(engine->OpenTables());
  engine->RebuildVersionLocked();
  if (engine->manifest_.imm_wal_number != 0) {
    // A crash landed between a memtable handoff and its flush; the
    // sealed memtable's WAL replays first so live-WAL records win.
    AUTHIDX_RETURN_NOT_OK(
        engine->ReplayWalIntoMemtable(engine->manifest_.imm_wal_number));
  }
  if (engine->manifest_.wal_number != 0) {
    AUTHIDX_RETURN_NOT_OK(
        engine->ReplayWalIntoMemtable(engine->manifest_.wal_number));
  }
  if (engine->mem_->entry_count() > 0) {
    // Recovered writes: persist them as a table so the old WALs can go.
    Status s = engine->RunRetriesLocked(
        "flush", engine->m_.flush_retries, [&engine] {
          engine->mu_.AssertHeld();
          return engine->SealMemtableLocked();
        });
    if (s.ok()) {
      s = engine->RunRetriesLocked(
          "flush", engine->m_.flush_retries, [&engine] {
            engine->mu_.AssertHeld();
            return engine->FlushImmLocked();
          });
    }
    AUTHIDX_RETURN_NOT_OK(s);
  } else {
    AUTHIDX_RETURN_NOT_OK(engine->SwitchToFreshWalLocked());
  }
  if (had_manifest) {
    // Sweep orphans the previous process never got to unlink: obsolete
    // recovery WALs plus any file a failed flush/compaction attempt left
    // behind (its removal queue died with the process). Skipped when no
    // manifest was found — a stray data file in a manifest-less
    // directory is evidence worth preserving, not garbage.
    engine->SweepUnreferencedFilesLocked();
    engine->RemoveObsoleteFilesLocked();
  }
  engine->log_->Log(
      obs::LogLevel::kInfo, "engine_open",
      {{"dir", engine->dir_},
       {"l0_files", engine->stats_.l0_files},
       {"l1_files", engine->stats_.l1_files},
       {"wal_replayed_records", engine->stats_.wal_replayed_records}});
  engine->StartBackgroundThread();
  return engine;
}

Status StorageEngine::ForEachRecordOp(
    std::string_view record,
    const std::function<void(std::string_view, std::string_view)>& put,
    const std::function<void(std::string_view)>& del) {
  if (record.empty()) {
    return Status::Corruption("empty WAL record");
  }
  char op = record.front();
  record.remove_prefix(1);
  if (op == kOpBatch) {
    return WriteBatch::Iterate(record, put, del);
  }
  std::string_view key, value;
  AUTHIDX_RETURN_NOT_OK(GetLengthPrefixed(&record, &key));
  if (op == kOpPut) {
    AUTHIDX_RETURN_NOT_OK(GetLengthPrefixed(&record, &value));
    put(key, value);
    return Status::OK();
  }
  if (op == kOpDelete) {
    del(key);
    return Status::OK();
  }
  return Status::Corruption("unknown WAL op");
}

std::string StorageEngine::EncodePutRecord(std::string_view key,
                                           std::string_view value) {
  std::string record(1, kOpPut);
  PutLengthPrefixed(&record, key);
  PutLengthPrefixed(&record, value);
  return record;
}

Status StorageEngine::ApplyRecordToMemtable(MemTable& mem,
                                            std::string_view record,
                                            uint64_t* puts,
                                            uint64_t* deletes) {
  return ForEachRecordOp(
      record,
      [&](std::string_view k, std::string_view v) {
        mem.Put(k, v);
        ++*puts;
      },
      [&](std::string_view k) {
        mem.Delete(k);
        ++*deletes;
      });
}

Status StorageEngine::ReplayWalIntoMemtable(uint64_t wal_number) {
  std::string path = WalFileName(dir_, wal_number);
  if (!env_->FileExists(path)) {
    return Status::OK();  // Crash between manifest save and WAL creation.
  }
  uint64_t ignored_puts = 0, ignored_deletes = 0;
  Result<WalReplayStats> stats =
      ReplayWal(env_, path, [&](std::string_view record) -> Status {
        return ApplyRecordToMemtable(*mem_, record, &ignored_puts,
                                     &ignored_deletes);
      });
  AUTHIDX_RETURN_NOT_OK(stats.status());
  stats_.wal_replayed_records += stats->records;
  stats_.wal_tail_corruption =
      stats_.wal_tail_corruption || stats->tail_corruption;
  m_.recovery_records->Inc(stats->records);
  if (stats->records > 0 || stats->tail_corruption) {
    log_->Log(obs::LogLevel::kInfo, "wal_recovery",
              {{"wal", wal_number},
               {"records_replayed", stats->records},
               {"tail_corruption", stats->tail_corruption}});
  }
  if (stats->tail_corruption) {
    log_->Log(obs::LogLevel::kWarn, "wal_tail_truncated",
              {{"wal", wal_number}, {"records_kept", stats->records}});
  }
  return Status::OK();
}

Result<std::shared_ptr<TableReader>> StorageEngine::OpenTableReader(
    uint64_t file_number) {
  Result<std::unique_ptr<TableReader>> reader = TableReader::Open(
      env_, TableFileName(dir_, file_number), &cache_, file_number);
  AUTHIDX_RETURN_NOT_OK(reader.status());
  std::shared_ptr<TableReader> shared = std::move(reader).value();
  shared->BindBloomMetrics(m_.bloom_checks, m_.bloom_negatives);
  shared->BindCorruptionMetric(m_.corrupt_blocks);
  return shared;
}

Status StorageEngine::OpenTables() {
  readers_.clear();
  for (const FileMeta& meta : manifest_.files) {
    Result<std::shared_ptr<TableReader>> reader =
        OpenTableReader(meta.file_number);
    if (!reader.ok()) {
      return reader.status().WithContext("opening table " +
                                         std::to_string(meta.file_number));
    }
    readers_.emplace_back(meta.file_number, std::move(reader).value());
  }
  return Status::OK();
}

Status StorageEngine::SwitchToFreshWalLocked() {
  // Stage the change and commit in-memory state only after the manifest
  // save succeeds: a retried caller must find the engine exactly as it
  // was before the failed attempt, or synced writes landing in a WAL the
  // durable manifest never heard of would be lost on crash.
  uint64_t number = manifest_.next_file_number++;
  Manifest pending = manifest_;
  std::string path = WalFileName(dir_, number);
  Result<std::unique_ptr<WalWriter>> fresh = WalWriter::Open(env_, path);
  AUTHIDX_RETURN_NOT_OK(fresh.status());
  pending.wal_number = number;
  pending.imm_wal_number = 0;  // Nothing recovered: no handoff pending.
  Status s = pending.Save(env_, dir_);
  if (!s.ok()) {
    log_->Log(obs::LogLevel::kError, "manifest_save_failed",
              {{"wal", number}, {"status", s.message()}});
    (*fresh)->Close().IgnoreError();
    ScheduleFileForRemovalLocked(std::move(path));  // Orphan WAL.
    return s;
  }
  wal_ = std::move(fresh).value();
  manifest_ = std::move(pending);
  committed_pos_ = {number, 0};
  log_->Log(obs::LogLevel::kDebug, "manifest_saved",
            {{"wal", number},
             {"files", static_cast<uint64_t>(manifest_.files.size())}});
  return Status::OK();
}

// Caller must be the writer-queue front (or the single-threaded open /
// close-finalize path): only the front writer may touch wal_.
Status StorageEngine::SealMemtableLocked() {
  // Numbers are allocated from the live manifest so a failed attempt
  // never reuses one: the file it half-created stays orphaned under its
  // own number and can be garbage-collected without racing a live file.
  uint64_t number = manifest_.next_file_number++;
  Manifest pending = manifest_;
  std::string path = WalFileName(dir_, number);
  Result<std::unique_ptr<WalWriter>> fresh = WalWriter::Open(env_, path);
  if (!fresh.ok()) {
    return fresh.status().WithContext("opening fresh WAL");
  }
  pending.imm_wal_number = pending.wal_number;
  pending.wal_number = number;
  Status s = pending.Save(env_, dir_);
  if (!s.ok()) {
    log_->Log(obs::LogLevel::kError, "manifest_save_failed",
              {{"wal", number}, {"status", s.message()}});
    (*fresh)->Close().IgnoreError();
    ScheduleFileForRemovalLocked(std::move(path));
    return s;
  }
  // Commit: the handoff is durable. The old WAL now backs imm_ and is
  // replayed on recovery until the flush lands. Closing it is safe:
  // per-record syncs already made acked synced writes durable, and
  // unsynced records carry no durability promise until Flush returns.
  manifest_ = std::move(pending);
  imm_ = std::move(mem_);
  mem_ = std::make_shared<MemTable>();
  if (wal_ != nullptr) {
    wal_->Close().IgnoreError();
  }
  wal_ = std::move(fresh).value();
  committed_pos_ = {number, 0};
  stats_.memtable_bytes = 0;
  log_->Log(obs::LogLevel::kDebug, "memtable_sealed",
            {{"imm_wal", manifest_.imm_wal_number},
             {"wal", manifest_.wal_number}});
  return Status::OK();
}

Status StorageEngine::MakeRoomForWriteLocked() {
  while (true) {
    if (closing_ || closed_) {
      return Status::FailedPrecondition("engine closed");
    }
    if (!bg_error_.ok()) {
      return bg_error_.WithContext("write rejected: engine degraded");
    }
    // An empty memtable always accepts a write: its arena pre-allocates a
    // block, so with tiny test thresholds the size check alone would seal
    // forever without ever making progress.
    if (mem_->entry_count() == 0 ||
        mem_->ApproximateMemoryUsage() < options_.memtable_bytes) {
      return Status::OK();
    }
    if (imm_ == nullptr) {
      // Hand the full memtable to the background thread and switch to a
      // fresh one; the write then proceeds without waiting for I/O.
      Status s = RunRetriesLocked("flush", m_.flush_retries, [this] {
        mu_.AssertHeld();
        return SealMemtableLocked();
      });
      if (!s.ok()) {
        return s;
      }
      UpdateQueueDepthLocked();
      bg_cv_.NotifyOne();
      continue;
    }
    // Backpressure: the previous handoff has not flushed yet. Writers
    // queue up behind this stall until the background thread catches up.
    ++stats_.write_stalls;
    m_.write_stalls->Inc();
    log_->Log(obs::LogLevel::kWarn, "write_stall",
              {{"memtable_bytes",
                static_cast<uint64_t>(mem_->ApproximateMemoryUsage())},
               {"l0_files", stats_.l0_files}});
    uint64_t start_ns = NowNs();
    while (!(imm_ == nullptr || !bg_error_.ok() || closing_ || shutdown_)) {
      bg_done_cv_.Wait(mu_);
    }
    m_.write_stall_ns->Record(NowNs() - start_ns);
  }
}

Status StorageEngine::QueueWrite(std::string record) {
  Writer w;
  w.kind = Writer::Kind::kWrite;
  w.record = std::move(record);
  MutexLock lock(mu_);
  writers_.push_back(&w);
  while (!w.done && writers_.front() != &w) {
    w.cv.Wait(mu_);
  }
  if (w.done) {
    return w.status;  // A leader committed (or failed) this write.
  }
  // This writer is the leader for the group at the queue front.
  Status s = WritableStatusLocked();
  if (s.ok()) {
    s = MakeRoomForWriteLocked();
  }
  if (!s.ok()) {
    // Fail only this write; the next writer re-evaluates for itself.
    writers_.pop_front();
    if (!writers_.empty()) {
      writers_.front()->cv.NotifyOne();
    }
    return s;
  }
  // Build the commit group: consecutive plain writes behind the leader,
  // capped so one pass cannot grow unboundedly. Sentinels stop it.
  std::vector<Writer*> group;
  group.push_back(&w);
  size_t group_bytes = w.record.size();
  for (size_t i = 1; i < writers_.size() && group_bytes < kMaxGroupCommitBytes;
       ++i) {
    Writer* peer = writers_[i];
    if (peer->kind != Writer::Kind::kWrite) {
      break;
    }
    group.push_back(peer);
    group_bytes += peer->record.size();
  }
  std::shared_ptr<MemTable> mem = mem_;
  WalWriter* wal = wal_.get();
  const bool sync = options_.sync_writes;
  // The WAL and memtable are safe to touch without the mutex: only the
  // queue-front writer appends to the WAL, the memtable pointer cannot
  // be resealed while this writer holds the front, and MemTable is
  // internally synchronized against concurrent readers. Relocked below
  // (balanced pair under the scoped MutexLock).
  mu_.Unlock();

  Status commit;
  const char* fail_op = "wal_append";
  uint64_t appended = 0, appended_bytes = 0;
  for (Writer* peer : group) {
    obs::TraceSpan timer(nullptr, m_.wal_append_ns, "wal_append");
    commit = wal->Append(peer->record);
    if (!commit.ok()) {
      break;
    }
    ++appended;
    appended_bytes += peer->record.size();
  }
  if (appended > 0) {
    m_.wal_appends->Inc(appended);
    m_.wal_append_bytes->Inc(appended_bytes);
  }
  if (commit.ok() && sync) {
    // One fdatasync covers the whole group: this is the fsync
    // amortization that makes concurrent synced writers scale.
    obs::TraceSpan timer(nullptr, m_.wal_sync_ns, "wal_sync");
    commit = wal->Sync();
    if (commit.ok()) {
      m_.wal_syncs->Inc();
    } else {
      fail_op = "wal_sync";
    }
  } else if (commit.ok()) {
    // Unsynced writes still leave the user-space buffer per group: the
    // committed frontier (below) promises replication readers that
    // every byte behind it is visible in the file.
    commit = wal->Flush();
    if (!commit.ok()) {
      fail_op = "wal_append";
    }
  }
  uint64_t puts = 0, deletes = 0;
  if (commit.ok()) {
    for (Writer* peer : group) {
      Status applied =
          ApplyRecordToMemtable(*mem, peer->record, &puts, &deletes);
      if (!applied.ok()) {
        commit = std::move(applied);
        fail_op = "memtable_apply";
        break;
      }
    }
    m_.group_commit_batches->Inc();
    m_.group_commit_writes->Inc(group.size());
    if (puts > 0) {
      m_.puts->Inc(puts);
    }
    if (deletes > 0) {
      m_.deletes->Inc(deletes);
    }
  }

  mu_.Lock();
  if (!commit.ok()) {
    log_->Log(obs::LogLevel::kError,
              std::string_view(fail_op) == "wal_sync" ? "wal_sync_failed"
                                                      : "wal_append_failed",
              {{"bytes", group_bytes}, {"status", commit.message()}});
    SetBackgroundErrorLocked(fail_op, commit);
  } else {
    // Advance the replication frontier to the end of this group. Safe
    // to pair with `wal` captured before unlocking: the queue front
    // owned the WAL for the whole commit, so no seal swapped it out.
    committed_pos_ = {manifest_.wal_number, wal->bytes_written()};
  }
  stats_.puts += puts;
  stats_.deletes += deletes;
  stats_.memtable_bytes = mem->ApproximateMemoryUsage();
  // If this commit pushed the memtable over its budget, the leader seals
  // it now (still at the queue front, so touching wal_ is legal) and —
  // after handing the front to the next writer — waits for the flush to
  // land. Later writers proceed into the fresh memtable meanwhile; only
  // the writer that crossed the threshold pays the flush latency, which
  // keeps `stats().flushes` deterministic for callers that bulk-load and
  // immediately inspect it. A seal failure degrades the engine (via the
  // retry loop) but does not fail this write: its WAL record is already
  // durable.
  bool sealed_here = false;
  if (commit.ok() && bg_error_.ok() && !closing_ && !closed_ &&
      imm_ == nullptr && mem_->entry_count() > 0 &&
      mem_->ApproximateMemoryUsage() >= options_.memtable_bytes) {
    Status sealed = RunRetriesLocked("flush", m_.flush_retries, [this] {
      mu_.AssertHeld();
      return SealMemtableLocked();
    });
    if (sealed.ok()) {
      sealed_here = true;
      bg_cv_.NotifyOne();
    }
  }
  if (bg_error_.ok() && options_.l0_compaction_trigger > 0 &&
      stats_.l0_files >= options_.l0_compaction_trigger) {
    bg_cv_.NotifyOne();
  }
  UpdateQueueDepthLocked();
  // Pop the whole group (it occupies the queue front in order) and wake
  // the members, then hand the front to the next waiting writer.
  for (Writer* peer : group) {
    writers_.pop_front();
    if (peer != &w) {
      peer->status = commit;
      peer->done = true;
      peer->cv.NotifyOne();
    }
  }
  if (!writers_.empty()) {
    writers_.front()->cv.NotifyOne();
  }
  if (sealed_here) {
    // The queue front has already moved on; this writer alone absorbs
    // the flush latency as backpressure.
    while (!(imm_ == nullptr || !bg_error_.ok() || shutdown_)) {
      bg_done_cv_.Wait(mu_);
    }
  }
  return commit;
}

namespace {
Status ApplyOnlyError() {
  return Status::FailedPrecondition(
      "engine is a replication follower (apply-only): direct writes "
      "are rejected, mutate the primary instead");
}
}  // namespace

Status StorageEngine::Put(std::string_view key, std::string_view value) {
  if (options_.apply_only) {
    return ApplyOnlyError();
  }
  return QueueWrite(EncodePutRecord(key, value));
}

Status StorageEngine::Delete(std::string_view key) {
  if (options_.apply_only) {
    return ApplyOnlyError();
  }
  std::string record(1, kOpDelete);
  PutLengthPrefixed(&record, key);
  return QueueWrite(std::move(record));
}

Status StorageEngine::Apply(const WriteBatch& batch) {
  if (options_.apply_only) {
    return ApplyOnlyError();
  }
  if (batch.empty()) {
    MutexLock lock(mu_);
    return WritableStatusLocked();
  }
  // One WAL record for the whole batch: atomic under recovery.
  std::string record(1, kOpBatch);
  record += batch.rep();
  return QueueWrite(std::move(record));
}

Status StorageEngine::ApplyReplicated(std::string_view record) {
  // Validate before queueing so a corrupt shipped record is rejected
  // here (the follower can drop the stream and resubscribe) instead of
  // poisoning the group-commit leader's memtable apply.
  Status valid = ForEachRecordOp(
      record, [](std::string_view, std::string_view) {},
      [](std::string_view) {});
  if (!valid.ok()) {
    return valid.WithContext("rejecting malformed replicated record");
  }
  return QueueWrite(std::string(record));
}

WalPosition StorageEngine::CommittedWalPosition() const {
  MutexLock lock(mu_);
  return committed_pos_;
}

void StorageEngine::PinWalsFrom(uint64_t wal_number) {
  MutexLock lock(mu_);
  wal_pin_ = wal_number;
  std::vector<uint64_t> still_retained;
  for (uint64_t number : retained_wals_) {
    if (number >= wal_pin_) {
      still_retained.push_back(number);
    } else {
      ScheduleFileForRemovalLocked(WalFileName(dir_, number));
    }
  }
  retained_wals_ = std::move(still_retained);
}

Result<std::optional<std::string>> StorageEngine::Get(std::string_view key) {
  ReadOptions defaults;
  defaults.verify_checksums = options_.verify_checksums;
  return Get(key, defaults);
}

Result<std::optional<std::string>> StorageEngine::Get(
    std::string_view key, const ReadOptions& options) {
  std::shared_ptr<MemTable> mem, imm;
  std::shared_ptr<const Version> version;
  {
    // Pin a consistent snapshot; everything after runs without the lock,
    // so reads never serialize behind flushes, compactions, or each
    // other's I/O.
    MutexLock lock(mu_);
    if (options_.paranoid_checks && !bg_error_.ok()) {
      return bg_error_.WithContext("read rejected: paranoid engine degraded");
    }
    mem = mem_;
    imm = imm_;
    version = version_;
    ++stats_.gets;
  }
  m_.gets->Inc();
  obs::TraceSpan timer(nullptr, m_.get_ns, "storage_get");
  std::string value;
  for (const std::shared_ptr<MemTable>& table : {mem, imm}) {
    if (table == nullptr) {
      continue;
    }
    switch (table->Get(key, &value)) {
      case MemTable::GetResult::kFound:
        return std::optional<std::string>(std::move(value));
      case MemTable::GetResult::kDeleted:
        return std::optional<std::string>();
      case MemTable::GetResult::kNotFound:
        break;
    }
  }
  // Level 0 newest-first, then level 1 by key range.
  auto lookup = [&](const TableEntry& entry)
      -> Result<std::optional<std::string>> {
    Result<std::optional<std::string>> found =
        entry.reader->Get(key, options.verify_checksums);
    if (!found.ok()) {
      // Corruption (bad block checksum, truncated table) surfaces here;
      // flag the file so an operator can quarantine it.
      log_->Log(obs::LogLevel::kError, "table_get_failed",
                {{"table", entry.meta.file_number},
                 {"level", entry.meta.level},
                 {"status", found.status().message()}});
    }
    return found;
  };
  for (const TableEntry& entry : version->level0) {
    AUTHIDX_ASSIGN_OR_RETURN(std::optional<std::string> tagged,
                             lookup(entry));
    if (tagged.has_value()) {
      if (MemTable::IsTombstoneValue(*tagged)) {
        return std::optional<std::string>();
      }
      return std::optional<std::string>(
          std::string(MemTable::StripTag(*tagged)));
    }
  }
  for (const TableEntry& entry : version->level1) {
    if (key < entry.meta.smallest_key || key > entry.meta.largest_key) {
      continue;
    }
    AUTHIDX_ASSIGN_OR_RETURN(std::optional<std::string> tagged,
                             lookup(entry));
    if (tagged.has_value()) {
      if (MemTable::IsTombstoneValue(*tagged)) {
        return std::optional<std::string>();
      }
      return std::optional<std::string>(
          std::string(MemTable::StripTag(*tagged)));
    }
  }
  return std::optional<std::string>();
}

std::unique_ptr<Iterator> StorageEngine::NewIterator() {
  std::shared_ptr<MemTable> mem, imm;
  std::shared_ptr<const Version> version;
  {
    MutexLock lock(mu_);
    if (options_.paranoid_checks && !bg_error_.ok()) {
      return NewErrorIterator(
          bg_error_.WithContext("read rejected: paranoid engine degraded"));
    }
    mem = mem_;
    imm = imm_;
    version = version_;
  }
  std::vector<std::unique_ptr<Iterator>> children;
  children.push_back(mem->NewIterator());
  if (imm != nullptr) {
    children.push_back(imm->NewIterator());
  }
  for (const TableEntry& entry : version->level0) {
    children.push_back(entry.reader->NewIterator(
        /*fill_cache=*/true, options_.verify_checksums));
  }
  for (const TableEntry& entry : version->level1) {
    children.push_back(entry.reader->NewIterator(
        /*fill_cache=*/true, options_.verify_checksums));
  }
  std::vector<std::shared_ptr<const void>> pins;
  pins.push_back(std::move(mem));
  if (imm != nullptr) {
    pins.push_back(std::move(imm));
  }
  pins.push_back(std::move(version));
  return std::make_unique<LiveIterator>(
      NewMergingIterator(std::move(children)), std::move(pins));
}

Result<FileMeta> StorageEngine::WriteTableFromIterator(Iterator* it,
                                                       int level,
                                                       bool drop_tombstones,
                                                       uint64_t file_number) {
  FileMeta meta;
  meta.file_number = file_number;
  meta.level = level;
  std::string path = TableFileName(dir_, file_number);
  AUTHIDX_ASSIGN_OR_RETURN(auto file, env_->NewWritableFile(path));
  TableBuilder::Options topt;
  topt.block_bytes = options_.block_bytes;
  topt.restart_interval = options_.restart_interval;
  topt.bloom_bits_per_key = options_.bloom_bits_per_key;
  topt.compress = options_.compress_blocks;
  TableBuilder builder(topt, file.get());
  bool first = true;
  for (it->SeekToFirst(); it->Valid(); it->Next()) {
    if (drop_tombstones && MemTable::IsTombstoneValue(it->value())) {
      continue;
    }
    AUTHIDX_RETURN_NOT_OK(builder.Add(it->key(), it->value()));
    if (first) {
      meta.smallest_key = it->key();
      first = false;
    }
    meta.largest_key = it->key();
  }
  AUTHIDX_RETURN_NOT_OK(it->status());
  AUTHIDX_RETURN_NOT_OK(builder.Finish());
  AUTHIDX_RETURN_NOT_OK(file->Sync());
  AUTHIDX_RETURN_NOT_OK(file->Close());
  meta.entry_count = builder.entry_count();
  return meta;
}

// Retry-safe: the manifest, reader set, and imm_ slot are only mutated
// after the last fallible step (the manifest save that commits the new
// table), so a failed attempt leaves the engine exactly as it was and a
// re-run starts from scratch. The table write runs without the mutex;
// the imm_ slot cannot change meanwhile (a second seal is blocked on
// imm_ != nullptr and compaction shares this thread).
Status StorageEngine::FlushImmLocked() {
  obs::TraceSpan timer(nullptr, m_.flush_ns, "flush");
  std::shared_ptr<MemTable> imm = imm_;
  uint64_t flushed_bytes = imm->ApproximateMemoryUsage();
  uint64_t flushed_entries = imm->entry_count();
  uint64_t file_number = manifest_.next_file_number++;
  std::string table_path = TableFileName(dir_, file_number);

  mu_.Unlock();
  auto imm_iter = imm->NewIterator();
  // Keep tombstones: they must shadow older runs until compaction.
  Result<FileMeta> written =
      WriteTableFromIterator(imm_iter.get(), /*level=*/0,
                             /*drop_tombstones=*/false, file_number);
  Status s = written.status();
  FileMeta meta;
  std::shared_ptr<TableReader> reader;
  if (s.ok()) {
    meta = std::move(written).value();
    if (meta.entry_count > 0) {
      Result<std::shared_ptr<TableReader>> opened =
          OpenTableReader(file_number);
      if (opened.ok()) {
        reader = std::move(opened).value();
      } else {
        s = opened.status().WithContext("opening flushed table");
      }
    }
  }
  mu_.Lock();

  if (!s.ok()) {
    ScheduleFileForRemovalLocked(std::move(table_path));
    return s;
  }
  // Stage: the flushed table joins the manifest and the handoff WAL is
  // no longer needed for recovery. One save commits both.
  Manifest pending = manifest_;
  pending.imm_wal_number = 0;
  if (meta.entry_count > 0) {
    pending.files.push_back(meta);
  } else {
    ScheduleFileForRemovalLocked(table_path);  // Defensive: empty output.
  }
  Status saved = pending.Save(env_, dir_);
  if (!saved.ok()) {
    log_->Log(obs::LogLevel::kError, "manifest_save_failed",
              {{"table", file_number}, {"status", saved.message()}});
    ScheduleFileForRemovalLocked(std::move(table_path));
    return saved;
  }
  // Commit.
  uint64_t imm_wal = manifest_.imm_wal_number;
  manifest_ = std::move(pending);
  if (reader != nullptr) {
    readers_.emplace_back(file_number, std::move(reader));
  }
  RebuildVersionLocked();
  imm_ = nullptr;
  if (imm_wal != 0) {
    if (imm_wal >= wal_pin_) {
      // A replication subscriber still needs this WAL; park it until
      // the pin advances past it (PinWalsFrom) or the engine reopens.
      retained_wals_.push_back(imm_wal);
    } else {
      ScheduleFileForRemovalLocked(WalFileName(dir_, imm_wal));
    }
  }
  ++stats_.flushes;
  m_.flushes->Inc();
  m_.flush_bytes->Inc(flushed_bytes);
  RemoveObsoleteFilesLocked();
  UpdateQueueDepthLocked();
  log_->Log(obs::LogLevel::kInfo, "memtable_flush",
            {{"table", file_number},
             {"entries", flushed_entries},
             {"bytes", flushed_bytes},
             {"duration_ns", timer.Stop()},
             {"l0_files", stats_.l0_files}});
  return Status::OK();
}

// Retry-safe on the same commit-ordering discipline as FlushImmLocked.
// The surviving readers are reused (never closed and reopened), so even
// a failed compaction leaves every live table servable — reads stay up
// while the engine degrades. The merge runs without the mutex; the file
// set cannot change meanwhile (flush shares this thread and seals only
// touch WAL state).
Status StorageEngine::CompactImplLocked() {
  obs::TraceSpan timer(nullptr, m_.compaction_ns, "compaction");
  if (manifest_.files.empty()) {
    return Status::OK();
  }
  if (manifest_.files.size() == 1 && manifest_.files[0].level == 1) {
    return Status::OK();  // Already fully compacted.
  }
  // Merge newest-first so the merging iterator's "first child wins" rule
  // preserves recency.
  std::vector<FileMeta> ordered = manifest_.LevelFiles(0);
  for (const FileMeta& meta : manifest_.LevelFiles(1)) {
    ordered.push_back(meta);
  }
  uint64_t bytes_in = 0;
  std::vector<std::shared_ptr<TableReader>> inputs;
  for (const FileMeta& meta : ordered) {
    auto it = std::find_if(readers_.begin(), readers_.end(),
                           [&](const auto& r) {
                             return r.first == meta.file_number;
                           });
    if (it == readers_.end()) {
      return Status::Internal("missing reader for table " +
                              std::to_string(meta.file_number));
    }
    inputs.push_back(it->second);
    bytes_in += it->second->file_bytes();
  }
  std::vector<FileMeta> old_files = manifest_.files;
  uint64_t file_number = manifest_.next_file_number++;
  std::string table_path = TableFileName(dir_, file_number);

  mu_.Unlock();
  std::vector<std::unique_ptr<Iterator>> children;
  children.reserve(inputs.size());
  for (const std::shared_ptr<TableReader>& input : inputs) {
    children.push_back(input->NewIterator(/*fill_cache=*/false));
  }
  auto merged = NewMergingIterator(std::move(children));
  Result<FileMeta> written = WriteTableFromIterator(
      merged.get(), /*level=*/1, /*drop_tombstones=*/true, file_number);
  Status s = written.status();
  FileMeta meta;
  std::shared_ptr<TableReader> reader;
  if (s.ok()) {
    meta = std::move(written).value();
    if (meta.entry_count > 0) {
      Result<std::shared_ptr<TableReader>> opened =
          OpenTableReader(file_number);
      if (opened.ok()) {
        reader = std::move(opened).value();
      } else {
        s = opened.status().WithContext("opening compacted table");
      }
    }
  }
  mu_.Lock();

  if (!s.ok()) {
    ScheduleFileForRemovalLocked(std::move(table_path));
    return s;
  }
  // Stage from the live manifest (a concurrent seal may have advanced
  // the WAL numbers); only the file set is replaced.
  Manifest pending = manifest_;
  pending.files.clear();
  if (meta.entry_count > 0) {
    pending.files.push_back(meta);
  } else {
    ScheduleFileForRemovalLocked(table_path);  // All inputs were dead.
  }
  Status saved = pending.Save(env_, dir_);
  if (!saved.ok()) {
    log_->Log(obs::LogLevel::kError, "manifest_save_failed",
              {{"compaction_output", file_number},
               {"status", saved.message()}});
    ScheduleFileForRemovalLocked(std::move(table_path));
    return saved;
  }
  // Commit: manifest is durable; drop the superseded runs.
  manifest_ = std::move(pending);
  if (reader != nullptr) {
    readers_.emplace_back(file_number, std::move(reader));
  }
  readers_.erase(
      std::remove_if(readers_.begin(), readers_.end(),
                     [&](const auto& r) {
                       return std::none_of(
                           manifest_.files.begin(), manifest_.files.end(),
                           [&](const FileMeta& f) {
                             return f.file_number == r.first;
                           });
                     }),
      readers_.end());
  RebuildVersionLocked();
  for (const FileMeta& old : old_files) {
    cache_.EraseFile(old.file_number);
    ScheduleFileForRemovalLocked(TableFileName(dir_, old.file_number));
  }
  ++stats_.compactions;
  m_.compactions->Inc();
  m_.compaction_bytes_in->Inc(bytes_in);
  uint64_t bytes_out = 0;
  if (meta.entry_count > 0) {
    Result<uint64_t> size = env_->FileSize(table_path);
    if (size.ok()) {  // Diagnostics only; never fail a committed compaction.
      bytes_out = *size;
      m_.compaction_bytes_out->Inc(bytes_out);
    }
  }
  RemoveObsoleteFilesLocked();
  UpdateQueueDepthLocked();
  log_->Log(obs::LogLevel::kInfo, "compaction",
            {{"inputs", static_cast<uint64_t>(old_files.size())},
             {"bytes_in", bytes_in},
             {"bytes_out", bytes_out},
             {"entries_out", meta.entry_count},
             {"duration_ns", timer.Stop()}});
  return Status::OK();
}

Status StorageEngine::Flush() {
  Writer w;
  w.kind = Writer::Kind::kSeal;
  MutexLock lock(mu_);
  writers_.push_back(&w);
  // Sentinels are never group-committed by a leader; they always reach
  // the front and process themselves.
  while (writers_.front() != &w) {
    w.cv.Wait(mu_);
  }
  Status s = WritableStatusLocked();
  bool sealed = false;
  if (s.ok() && imm_ != nullptr) {
    // A previous handoff is still flushing; it must land before the
    // memtable can seal again.
    while (!(imm_ == nullptr || !bg_error_.ok() || shutdown_)) {
      bg_done_cv_.Wait(mu_);
    }
    if (!bg_error_.ok()) {
      s = bg_error_;
    } else if (imm_ != nullptr) {
      s = Status::FailedPrecondition("engine closed");
    }
  }
  if (s.ok() && mem_->entry_count() > 0) {
    s = RunRetriesLocked("flush", m_.flush_retries, [this] {
      mu_.AssertHeld();
      return SealMemtableLocked();
    });
    if (s.ok()) {
      sealed = true;
      UpdateQueueDepthLocked();
      bg_cv_.NotifyOne();
    }
  }
  // Hand the queue front to the next writer before waiting for the
  // background flush: later writes proceed while this one blocks.
  writers_.pop_front();
  if (!writers_.empty()) {
    writers_.front()->cv.NotifyOne();
  }
  if (s.ok() && sealed) {
    while (!(imm_ == nullptr || !bg_error_.ok() || shutdown_)) {
      bg_done_cv_.Wait(mu_);
    }
    if (!bg_error_.ok()) {
      s = bg_error_;
    } else if (imm_ != nullptr) {
      s = Status::FailedPrecondition("engine closed");
    }
  }
  return s;
}

Status StorageEngine::Compact() {
  AUTHIDX_RETURN_NOT_OK(Flush());
  MutexLock lock(mu_);
  // Serialize manual compactions; each waiter gets its own completion.
  while (!(manual_compaction_ == nullptr || shutdown_)) {
    bg_done_cv_.Wait(mu_);
  }
  if (closing_ || closed_ || shutdown_) {
    return Status::FailedPrecondition("engine closed");
  }
  ManualCompaction mc;
  manual_compaction_ = &mc;
  UpdateQueueDepthLocked();
  bg_cv_.NotifyOne();
  // The background thread always completes a pending manual compaction —
  // degraded engines get the sticky error, shutdown gets a rejection —
  // so this wait cannot hang.
  while (!mc.done) {
    bg_done_cv_.Wait(mu_);
  }
  return mc.status;
}

Result<IntegrityReport> StorageEngine::VerifyIntegrity() {
  IntegrityReport report;
  std::vector<FileMeta> files;
  {
    MutexLock lock(mu_);
    if (closed_) {
      return Status::FailedPrecondition("engine closed");
    }
    // The durable manifest must parse (Load re-checks its CRC) and agree
    // with the live file set; a mismatch means the on-disk store would
    // come back different from what this engine is serving. Loaded under
    // the mutex so no save can interleave.
    Result<Manifest> disk = Manifest::Load(env_, dir_);
    if (!disk.ok()) {
      report.manifest_status = disk.status().WithContext("loading manifest");
    } else {
      auto file_set = [](const Manifest& m) {
        std::vector<std::pair<uint64_t, int>> set;
        set.reserve(m.files.size());
        for (const FileMeta& f : m.files) {
          set.emplace_back(f.file_number, f.level);
        }
        std::sort(set.begin(), set.end());
        return set;
      };
      if (file_set(*disk) != file_set(manifest_) ||
          disk->wal_number != manifest_.wal_number) {
        report.manifest_status = Status::Corruption(
            "on-disk manifest does not match the live engine state");
      }
    }
    files = manifest_.files;
  }
  // Every table: fresh reader (footer/index/filter re-validated), full
  // scan with the cache bypassed so each block's CRC is re-checked
  // against the bytes on disk, plus order/range/count checks against
  // the manifest. Per-file reporting: one corrupt table must not hide
  // damage in the others. Runs without the mutex — a concurrent
  // compaction may remove a superseded file mid-scan, which surfaces as
  // a per-file error rather than blocking writes for the whole scan.
  for (const FileMeta& meta : files) {
    FileIntegrity file;
    file.file_number = meta.file_number;
    file.level = meta.level;
    file.status = [&]() -> Status {
      Result<std::unique_ptr<TableReader>> opened = TableReader::Open(
          env_, TableFileName(dir_, meta.file_number));
      AUTHIDX_RETURN_NOT_OK(opened.status());
      (*opened)->BindCorruptionMetric(m_.corrupt_blocks);
      auto it = (*opened)->NewIterator(/*fill_cache=*/false,
                                       /*verify_checksums=*/true);
      std::string last_key;
      for (it->SeekToFirst(); it->Valid(); it->Next()) {
        std::string_view key = it->key();
        if (file.entries_scanned == 0) {
          if (key != meta.smallest_key) {
            return Status::Corruption("first key differs from manifest");
          }
        } else if (key <= last_key) {
          return Status::Corruption("keys out of order");
        }
        last_key.assign(key.data(), key.size());
        ++file.entries_scanned;
      }
      AUTHIDX_RETURN_NOT_OK(it->status());
      if (file.entries_scanned != meta.entry_count) {
        return Status::Corruption("entry count differs from manifest");
      }
      if (meta.entry_count > 0 && last_key != meta.largest_key) {
        return Status::Corruption("last key differs from manifest");
      }
      return Status::OK();
    }();
    if (!file.status.ok()) {
      ++report.corrupt_files;
      log_->Log(obs::LogLevel::kError, "table_corrupt",
                {{"table", meta.file_number},
                 {"level", meta.level},
                 {"entries_scanned", file.entries_scanned},
                 {"status", file.status.message()}});
    }
    report.files.push_back(std::move(file));
  }
  log_->Log(report.clean() ? obs::LogLevel::kInfo : obs::LogLevel::kError,
            "integrity_scan",
            {{"tables", static_cast<uint64_t>(report.files.size())},
             {"corrupt_tables", report.corrupt_files},
             {"manifest_ok", report.manifest_status.ok()}});
  return report;
}

Status StorageEngine::CreateCheckpoint(const std::string& checkpoint_dir) {
  {
    MutexLock lock(mu_);
    AUTHIDX_RETURN_NOT_OK(WritableStatusLocked());
  }
  if (env_->FileExists(ManifestFileName(checkpoint_dir))) {
    return Status::AlreadyExists("checkpoint target already holds a store: " +
                                 checkpoint_dir);
  }
  // Everything in the memtable/WAL moves into immutable tables first, so
  // the checkpoint is exactly the manifest + table files.
  AUTHIDX_RETURN_NOT_OK(Flush());
  AUTHIDX_RETURN_NOT_OK(env_->CreateDirIfMissing(checkpoint_dir));
  // Copy under the mutex: commits (and the unlinks that follow them)
  // cannot interleave, so the manifest snapshot and the files it names
  // stay consistent for the duration of the copy.
  MutexLock lock(mu_);
  Manifest snapshot = manifest_;
  snapshot.wal_number = 0;      // The copy starts with no WAL...
  snapshot.imm_wal_number = 0;  // ...and no handoff in flight.
  for (const FileMeta& meta : snapshot.files) {
    AUTHIDX_ASSIGN_OR_RETURN(
        std::string contents,
        env_->ReadFileToString(TableFileName(dir_, meta.file_number)));
    AUTHIDX_RETURN_NOT_OK(env_->WriteStringToFileSync(
        TableFileName(checkpoint_dir, meta.file_number), contents));
  }
  return snapshot.Save(env_, checkpoint_dir);
}

Status StorageEngine::Close() {
  MutexLock lock(mu_);
  if (closed_) {
    return Status::OK();
  }
  Writer w;
  w.kind = Writer::Kind::kBarrier;
  writers_.push_back(&w);
  while (writers_.front() != &w) {
    w.cv.Wait(mu_);
  }
  if (closing_ || closed_) {
    // Lost the race to a concurrent Close; wait for it to finish.
    writers_.pop_front();
    if (!writers_.empty()) {
      writers_.front()->cv.NotifyOne();
    }
    while (!closed_) {
      bg_done_cv_.Wait(mu_);
    }
    return Status::OK();
  }
  // From this moment every queued or future write is rejected.
  closing_ = true;
  writers_.pop_front();
  if (!writers_.empty()) {
    writers_.front()->cv.NotifyOne();
  }
  shutdown_ = true;
  bg_cv_.NotifyAll();
  bg_done_cv_.NotifyAll();
  // Joining with the mutex held would deadlock (the background thread
  // needs it to observe shutdown_); relocked below in a balanced pair.
  mu_.Unlock();
  if (bg_thread_.joinable()) {
    bg_thread_.join();
  }
  mu_.Lock();
  // Finalize inline: the background thread is gone, so any leftover
  // handoff and the live memtable flush here. A degraded engine skips
  // the flush (it would only re-fail) and reports the sticky error; the
  // WAL is still synced and closed best-effort so appended records get
  // their last push toward disk.
  Status s = bg_error_;
  if (s.ok() && imm_ != nullptr) {
    s = RunRetriesLocked("flush", m_.flush_retries, [this] {
      mu_.AssertHeld();
      return FlushImmLocked();
    });
  }
  if (s.ok() && mem_->entry_count() > 0) {
    s = RunRetriesLocked("flush", m_.flush_retries, [this] {
      mu_.AssertHeld();
      return SealMemtableLocked();
    });
    if (s.ok()) {
      s = RunRetriesLocked("flush", m_.flush_retries, [this] {
        mu_.AssertHeld();
        return FlushImmLocked();
      });
    }
  }
  if (wal_ != nullptr) {
    Status sync = wal_->Sync();
    Status closed = wal_->Close();
    if (s.ok()) {
      s = sync.ok() ? closed : sync;
    }
  }
  closed_ = true;
  bg_done_cv_.NotifyAll();
  if (s.ok()) {
    log_->Log(obs::LogLevel::kInfo, "engine_close", {{"dir", dir_}});
  } else {
    log_->Log(obs::LogLevel::kError, "engine_close_failed",
              {{"dir", dir_}, {"status", s.message()}});
  }
  return s;
}

Status StorageEngine::background_error() const {
  MutexLock lock(mu_);
  return bg_error_;
}

EngineStats StorageEngine::stats() const {
  MutexLock lock(mu_);
  EngineStats copy = stats_;
  if (mem_ != nullptr) {
    copy.memtable_bytes = mem_->ApproximateMemoryUsage();
  }
  return copy;
}

}  // namespace authidx::storage
