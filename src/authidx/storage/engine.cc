#include "authidx/storage/engine.h"

#include <algorithm>

#include "authidx/common/coding.h"
#include "authidx/obs/trace.h"

namespace authidx::storage {

namespace {

constexpr char kOpPut = 'P';
constexpr char kOpDelete = 'D';
constexpr char kOpBatch = 'B';

// Iterator adapter that strips value tags and skips tombstones, turning
// the raw merged stream into a live-keys view.
class LiveIterator final : public Iterator {
 public:
  explicit LiveIterator(std::unique_ptr<Iterator> base)
      : base_(std::move(base)) {}

  bool Valid() const override { return base_->Valid(); }
  void SeekToFirst() override {
    base_->SeekToFirst();
    SkipTombstones();
  }
  void Seek(std::string_view target) override {
    base_->Seek(target);
    SkipTombstones();
  }
  void Next() override {
    base_->Next();
    SkipTombstones();
  }
  std::string_view key() const override { return base_->key(); }
  std::string_view value() const override {
    return MemTable::StripTag(base_->value());
  }
  Status status() const override { return base_->status(); }

 private:
  void SkipTombstones() {
    while (base_->Valid() && MemTable::IsTombstoneValue(base_->value())) {
      base_->Next();
    }
  }

  std::unique_ptr<Iterator> base_;
};

}  // namespace

StorageEngine::StorageEngine(std::string dir, EngineOptions options)
    : dir_(std::move(dir)),
      options_(options),
      env_(options.env != nullptr ? options.env : Env::Default()),
      owned_metrics_(options.metrics == nullptr
                         ? std::make_unique<obs::MetricsRegistry>()
                         : nullptr),
      metrics_(options.metrics != nullptr ? options.metrics
                                          : owned_metrics_.get()),
      log_(options.logger != nullptr ? options.logger
                                     : obs::Logger::Disabled()),
      cache_(options.block_cache_bytes),
      memtable_(std::make_unique<MemTable>()) {
  RegisterInstruments();
}

void StorageEngine::RegisterInstruments() {
  m_.wal_appends = metrics_->RegisterCounter(
      "authidx_wal_appends_total", "WAL records appended");
  m_.wal_append_bytes = metrics_->RegisterCounter(
      "authidx_wal_append_bytes_total", "WAL record payload bytes appended");
  m_.wal_syncs = metrics_->RegisterCounter(
      "authidx_wal_syncs_total", "WAL fdatasync calls");
  m_.wal_append_ns = metrics_->RegisterLatencyHistogram(
      "authidx_wal_append_duration_ns", "Latency of one WAL append, ns");
  m_.wal_sync_ns = metrics_->RegisterLatencyHistogram(
      "authidx_wal_sync_duration_ns", "Latency of one WAL fdatasync, ns");
  m_.flushes = metrics_->RegisterCounter(
      "authidx_memtable_flushes_total", "Memtable flushes to level-0 tables");
  m_.flush_bytes = metrics_->RegisterCounter(
      "authidx_memtable_flush_bytes_total",
      "Approximate memtable bytes at each flush");
  m_.flush_ns = metrics_->RegisterLatencyHistogram(
      "authidx_memtable_flush_duration_ns", "Latency of one flush, ns");
  m_.compactions = metrics_->RegisterCounter(
      "authidx_compactions_total", "Level-0 -> level-1 compactions");
  m_.compaction_bytes_in = metrics_->RegisterCounter(
      "authidx_compaction_bytes_in_total",
      "Table-file bytes read by compactions");
  m_.compaction_bytes_out = metrics_->RegisterCounter(
      "authidx_compaction_bytes_out_total",
      "Table-file bytes written by compactions");
  m_.compaction_ns = metrics_->RegisterLatencyHistogram(
      "authidx_compaction_duration_ns", "Latency of one compaction, ns");
  m_.cache_hits = metrics_->RegisterCounter(
      "authidx_block_cache_hits_total", "Block cache hits");
  m_.cache_misses = metrics_->RegisterCounter(
      "authidx_block_cache_misses_total", "Block cache misses");
  m_.cache_evictions = metrics_->RegisterCounter(
      "authidx_block_cache_evictions_total", "Block cache LRU evictions");
  m_.cache_bytes = metrics_->RegisterGauge(
      "authidx_block_cache_bytes", "Block cache bytes currently resident");
  m_.bloom_checks = metrics_->RegisterCounter(
      "authidx_bloom_checks_total", "Bloom filter consultations");
  m_.bloom_negatives = metrics_->RegisterCounter(
      "authidx_bloom_negatives_total",
      "Bloom filter definite-absent short-circuits");
  m_.puts = metrics_->RegisterCounter(
      "authidx_storage_puts_total", "Engine Put operations (incl. batched)");
  m_.deletes = metrics_->RegisterCounter(
      "authidx_storage_deletes_total",
      "Engine Delete operations (incl. batched)");
  m_.gets = metrics_->RegisterCounter(
      "authidx_storage_gets_total", "Engine point lookups");
  m_.get_ns = metrics_->RegisterLatencyHistogram(
      "authidx_storage_get_duration_ns", "Latency of one point lookup, ns");
  m_.recovery_records = metrics_->RegisterCounter(
      "authidx_engine_recovery_records_total",
      "WAL records replayed during recovery");
  m_.bg_errors = metrics_->RegisterCounter(
      "authidx_bg_errors_total",
      "Background errors that tripped degraded mode");
  m_.flush_retries = metrics_->RegisterCounter(
      "authidx_retries_total{op=\"flush\"}",
      "Transient memtable-flush failures retried with backoff");
  m_.compaction_retries = metrics_->RegisterCounter(
      "authidx_retries_total{op=\"compaction\"}",
      "Transient compaction failures retried with backoff");
  m_.corrupt_blocks = metrics_->RegisterCounter(
      "authidx_corrupt_blocks_total",
      "Table blocks failing CRC, framing, or decompression checks");
  m_.gc_failures = metrics_->RegisterCounter(
      "authidx_gc_failures_total",
      "Obsolete-file removals that failed (retried after the next "
      "successful flush or compaction)");
  m_.degraded = metrics_->RegisterGauge(
      "authidx_degraded",
      "1 while a sticky background error has the engine degraded");
  cache_.BindMetrics(m_.cache_hits, m_.cache_misses, m_.cache_evictions,
                     m_.cache_bytes);
}

Status StorageEngine::WritableStatus() const {
  if (closed_) {
    return Status::FailedPrecondition("engine closed");
  }
  if (!bg_error_.ok()) {
    return bg_error_.WithContext("write rejected: engine degraded");
  }
  return Status::OK();
}

void StorageEngine::SetBackgroundError(std::string_view op,
                                       const Status& status) {
  if (status.ok() || !bg_error_.ok()) {
    return;  // First error wins; reopening the store is the only reset.
  }
  bg_error_ = status.WithContext(op);
  m_.bg_errors->Inc();
  m_.degraded->Set(1);
  log_->Log(obs::LogLevel::kError, "engine_degraded",
            {{"op", op},
             {"status", status.message()},
             {"paranoid", options_.paranoid_checks}});
}

Status StorageEngine::RunBackgroundOp(const char* op,
                                      obs::Counter* retry_counter,
                                      const std::function<Status()>& body) {
  RetryPolicy policy;
  policy.max_attempts = options_.background_retry_attempts;
  policy.base_delay_us = options_.retry_base_delay_us;
  policy.max_delay_us = options_.retry_max_delay_us;
  Status s = RetryWithBackoff(
      policy, &retry_rng_, body,
      [&](int attempt, const Status& failure, uint64_t delay_us) {
        retry_counter->Inc();
        log_->Log(obs::LogLevel::kWarn, "retry_attempt",
                  {{"op", op},
                   {"attempt", attempt},
                   {"status", failure.message()},
                   {"backoff_us", delay_us}});
      });
  if (!s.ok()) {
    SetBackgroundError(op, s);
  }
  return s;
}

void StorageEngine::ScheduleFileForRemoval(std::string path) {
  if (std::find(pending_removals_.begin(), pending_removals_.end(), path) ==
      pending_removals_.end()) {
    pending_removals_.push_back(std::move(path));
  }
}

void StorageEngine::RemoveObsoleteFiles() {
  std::vector<std::string> still_pending;
  for (std::string& path : pending_removals_) {
    if (!env_->FileExists(path)) {
      continue;
    }
    Status s = env_->RemoveFile(path);
    if (!s.ok()) {
      // Best-effort: disk-space leak, not a correctness problem. Count
      // and log it so stuck files surface, and retry after the next
      // successful flush/compaction.
      m_.gc_failures->Inc();
      log_->Log(obs::LogLevel::kWarn, "gc_failed",
                {{"path", path}, {"status", s.message()}});
      still_pending.push_back(std::move(path));
    }
  }
  pending_removals_ = std::move(still_pending);
}

namespace {
// Matches `<digits>.<ext>` (the TableFileName/WalFileName shapes) and
// extracts the number; anything else — MANIFEST, foreign files — is
// left alone by the sweep.
bool ParseNumberedFile(const std::string& name, std::string_view ext,
                       uint64_t* number) {
  size_t dot = name.rfind('.');
  if (dot == std::string::npos || dot == 0 ||
      std::string_view(name).substr(dot) != ext) {
    return false;
  }
  uint64_t value = 0;
  for (size_t i = 0; i < dot; ++i) {
    if (name[i] < '0' || name[i] > '9') {
      return false;
    }
    value = value * 10 + static_cast<uint64_t>(name[i] - '0');
  }
  *number = value;
  return true;
}
}  // namespace

void StorageEngine::SweepUnreferencedFiles() {
  Result<std::vector<std::string>> listing = env_->ListDir(dir_);
  if (!listing.ok()) {
    return;  // Best-effort, like every other GC path.
  }
  for (const std::string& name : *listing) {
    uint64_t number = 0;
    if (ParseNumberedFile(name, ".tbl", &number)) {
      if (std::none_of(manifest_.files.begin(), manifest_.files.end(),
                       [&](const FileMeta& f) {
                         return f.file_number == number;
                       })) {
        ScheduleFileForRemoval(TableFileName(dir_, number));
      }
    } else if (ParseNumberedFile(name, ".wal", &number)) {
      if (number != manifest_.wal_number) {
        ScheduleFileForRemoval(WalFileName(dir_, number));
      }
    }
  }
}

void StorageEngine::PruneReadersToManifest() {
  readers_.erase(
      std::remove_if(readers_.begin(), readers_.end(),
                     [&](const auto& r) {
                       return std::none_of(
                           manifest_.files.begin(), manifest_.files.end(),
                           [&](const FileMeta& f) {
                             return f.file_number == r.first;
                           });
                     }),
      readers_.end());
  stats_.l0_files = 0;
  stats_.l1_files = 0;
  for (const FileMeta& meta : manifest_.files) {
    (meta.level == 0 ? stats_.l0_files : stats_.l1_files) += 1;
  }
}

StorageEngine::~StorageEngine() {
  if (!closed_) {
    // Destructors cannot propagate errors; callers wanting the close
    // status must call Close() explicitly before destruction.
    Close().IgnoreError();
  }
}

Result<std::unique_ptr<StorageEngine>> StorageEngine::Open(
    std::string dir, EngineOptions options) {
  auto engine = std::unique_ptr<StorageEngine>(
      new StorageEngine(std::move(dir), options));
  AUTHIDX_RETURN_NOT_OK(engine->env_->CreateDirIfMissing(engine->dir_));
  Result<Manifest> manifest = Manifest::Load(engine->env_, engine->dir_);
  const bool had_manifest = manifest.ok();
  if (manifest.ok()) {
    engine->manifest_ = std::move(manifest).value();
  } else if (!manifest.status().IsNotFound()) {
    return manifest.status().WithContext("loading manifest");
  }
  AUTHIDX_RETURN_NOT_OK(engine->OpenTables());
  uint64_t old_wal = engine->manifest_.wal_number;
  if (old_wal != 0) {
    AUTHIDX_RETURN_NOT_OK(engine->ReplayWalIntoMemtable(old_wal));
  }
  if (engine->memtable_->entry_count() > 0) {
    // Recovered writes: persist them as a table so the old WAL can go.
    AUTHIDX_RETURN_NOT_OK(engine->Flush());
  } else {
    AUTHIDX_RETURN_NOT_OK(engine->SwitchToFreshWal());
  }
  if (had_manifest) {
    // Sweep orphans the previous process never got to unlink: the
    // obsolete recovery WAL plus any file a failed flush/compaction
    // attempt left behind (its removal queue died with the process).
    // Skipped when no manifest was found — a stray data file in a
    // manifest-less directory is evidence worth preserving, not
    // garbage. Best-effort, never a reason to fail a healthy open.
    engine->SweepUnreferencedFiles();
    engine->RemoveObsoleteFiles();
  }
  engine->log_->Log(
      obs::LogLevel::kInfo, "engine_open",
      {{"dir", engine->dir_},
       {"l0_files", engine->stats_.l0_files},
       {"l1_files", engine->stats_.l1_files},
       {"wal_replayed_records", engine->stats_.wal_replayed_records}});
  return engine;
}

Status StorageEngine::ReplayWalIntoMemtable(uint64_t wal_number) {
  std::string path = WalFileName(dir_, wal_number);
  if (!env_->FileExists(path)) {
    return Status::OK();  // Crash between manifest save and WAL creation.
  }
  Result<WalReplayStats> stats = ReplayWal(
      env_, path, [this](std::string_view record) -> Status {
        if (record.empty()) {
          return Status::Corruption("empty WAL record");
        }
        char op = record.front();
        record.remove_prefix(1);
        if (op == kOpBatch) {
          return WriteBatch::Iterate(
              record,
              [this](std::string_view k, std::string_view v) {
                memtable_->Put(k, v);
              },
              [this](std::string_view k) { memtable_->Delete(k); });
        }
        std::string_view key, value;
        AUTHIDX_RETURN_NOT_OK(GetLengthPrefixed(&record, &key));
        if (op == kOpPut) {
          AUTHIDX_RETURN_NOT_OK(GetLengthPrefixed(&record, &value));
          memtable_->Put(key, value);
          return Status::OK();
        }
        if (op == kOpDelete) {
          memtable_->Delete(key);
          return Status::OK();
        }
        return Status::Corruption("unknown WAL op");
      });
  AUTHIDX_RETURN_NOT_OK(stats.status());
  stats_.wal_replayed_records = stats->records;
  stats_.wal_tail_corruption = stats->tail_corruption;
  m_.recovery_records->Inc(stats->records);
  if (stats->records > 0 || stats->tail_corruption) {
    log_->Log(obs::LogLevel::kInfo, "wal_recovery",
              {{"wal", wal_number},
               {"records_replayed", stats->records},
               {"tail_corruption", stats->tail_corruption}});
  }
  if (stats->tail_corruption) {
    log_->Log(obs::LogLevel::kWarn, "wal_tail_truncated",
              {{"wal", wal_number}, {"records_kept", stats->records}});
  }
  return Status::OK();
}

Status StorageEngine::OpenTables() {
  readers_.clear();
  stats_.l0_files = 0;
  stats_.l1_files = 0;
  for (const FileMeta& meta : manifest_.files) {
    Result<std::unique_ptr<TableReader>> reader =
        TableReader::Open(env_, TableFileName(dir_, meta.file_number),
                          &cache_, meta.file_number);
    if (!reader.ok()) {
      return reader.status().WithContext("opening table " +
                                         std::to_string(meta.file_number));
    }
    readers_.emplace_back(meta.file_number, std::move(reader).value());
    readers_.back().second->BindBloomMetrics(m_.bloom_checks,
                                             m_.bloom_negatives);
    readers_.back().second->BindCorruptionMetric(m_.corrupt_blocks);
    (meta.level == 0 ? stats_.l0_files : stats_.l1_files) += 1;
  }
  return Status::OK();
}

Status StorageEngine::SwitchToFreshWal() {
  // Stage the change and commit in-memory state only after the manifest
  // save succeeds: a retried caller must find the engine exactly as it
  // was before the failed attempt, or synced writes landing in a WAL the
  // durable manifest never heard of would be lost on crash.
  Manifest pending = manifest_;
  uint64_t number = pending.next_file_number++;
  std::string path = WalFileName(dir_, number);
  Result<std::unique_ptr<WalWriter>> fresh = WalWriter::Open(env_, path);
  AUTHIDX_RETURN_NOT_OK(fresh.status());
  pending.wal_number = number;
  Status s = pending.Save(env_, dir_);
  if (!s.ok()) {
    log_->Log(obs::LogLevel::kError, "manifest_save_failed",
              {{"wal", number}, {"status", s.message()}});
    (*fresh)->Close().IgnoreError();
    ScheduleFileForRemoval(path);  // Orphan WAL nothing references.
    return s;
  }
  wal_ = std::move(fresh).value();
  manifest_ = std::move(pending);
  log_->Log(obs::LogLevel::kDebug, "manifest_saved",
            {{"wal", number},
             {"files", static_cast<uint64_t>(manifest_.files.size())}});
  return Status::OK();
}

// Timed WAL append (plus the per-write fdatasync when configured),
// shared by single ops and batches. Any failure here trips the sticky
// background error immediately, never a retry: re-appending could
// duplicate a record that actually reached disk, and acknowledging a
// write whose sync failed would break the durability contract.
Status StorageEngine::AppendWalRecord(std::string_view record) {
  {
    obs::TraceSpan timer(nullptr, m_.wal_append_ns, "wal_append");
    Status s = wal_->Append(record);
    if (!s.ok()) {
      log_->Log(obs::LogLevel::kError, "wal_append_failed",
                {{"bytes", record.size()}, {"status", s.message()}});
      SetBackgroundError("wal_append", s);
      return s;
    }
  }
  m_.wal_appends->Inc();
  m_.wal_append_bytes->Inc(record.size());
  if (options_.sync_writes) {
    obs::TraceSpan timer(nullptr, m_.wal_sync_ns, "wal_sync");
    Status s = wal_->Sync();
    if (!s.ok()) {
      log_->Log(obs::LogLevel::kError, "wal_sync_failed",
                {{"bytes", record.size()}, {"status", s.message()}});
      SetBackgroundError("wal_sync", s);
      return s;
    }
    m_.wal_syncs->Inc();
  }
  return Status::OK();
}

Status StorageEngine::WriteRecord(char op, std::string_view key,
                                  std::string_view value) {
  AUTHIDX_RETURN_NOT_OK(WritableStatus());
  std::string record(1, op);
  PutLengthPrefixed(&record, key);
  if (op == kOpPut) {
    PutLengthPrefixed(&record, value);
  }
  return AppendWalRecord(record);
}

Status StorageEngine::Put(std::string_view key, std::string_view value) {
  AUTHIDX_RETURN_NOT_OK(WriteRecord(kOpPut, key, value));
  memtable_->Put(key, value);
  ++stats_.puts;
  m_.puts->Inc();
  return MaybeFlushAndCompact();
}

Status StorageEngine::Delete(std::string_view key) {
  AUTHIDX_RETURN_NOT_OK(WriteRecord(kOpDelete, key, {}));
  memtable_->Delete(key);
  ++stats_.deletes;
  m_.deletes->Inc();
  return MaybeFlushAndCompact();
}

Status StorageEngine::Apply(const WriteBatch& batch) {
  AUTHIDX_RETURN_NOT_OK(WritableStatus());
  if (batch.empty()) {
    return Status::OK();
  }
  // One WAL record for the whole batch: atomic under recovery.
  std::string record(1, kOpBatch);
  record += batch.rep();
  AUTHIDX_RETURN_NOT_OK(AppendWalRecord(record));
  AUTHIDX_RETURN_NOT_OK(WriteBatch::Iterate(
      batch.rep(),
      [this](std::string_view k, std::string_view v) {
        memtable_->Put(k, v);
        ++stats_.puts;
        m_.puts->Inc();
      },
      [this](std::string_view k) {
        memtable_->Delete(k);
        ++stats_.deletes;
        m_.deletes->Inc();
      }));
  return MaybeFlushAndCompact();
}

Status StorageEngine::MaybeFlushAndCompact() {
  stats_.memtable_bytes = memtable_->ApproximateMemoryUsage();
  if (stats_.memtable_bytes >= options_.memtable_bytes) {
    AUTHIDX_RETURN_NOT_OK(Flush());
  }
  if (stats_.l0_files >= options_.l0_compaction_trigger) {
    AUTHIDX_RETURN_NOT_OK(Compact());
  }
  return Status::OK();
}

Result<std::optional<std::string>> StorageEngine::Get(std::string_view key) {
  ReadOptions defaults;
  defaults.verify_checksums = options_.verify_checksums;
  return Get(key, defaults);
}

Result<std::optional<std::string>> StorageEngine::Get(
    std::string_view key, const ReadOptions& options) {
  if (options_.paranoid_checks && !bg_error_.ok()) {
    return bg_error_.WithContext("read rejected: paranoid engine degraded");
  }
  ++stats_.gets;
  m_.gets->Inc();
  obs::TraceSpan timer(nullptr, m_.get_ns, "storage_get");
  std::string value;
  switch (memtable_->Get(key, &value)) {
    case MemTable::GetResult::kFound:
      return std::optional<std::string>(std::move(value));
    case MemTable::GetResult::kDeleted:
      return std::optional<std::string>();
    case MemTable::GetResult::kNotFound:
      break;
  }
  // Level 0 newest-first, then level 1 by key range.
  for (int level = 0; level <= 1; ++level) {
    for (const FileMeta& meta : manifest_.LevelFiles(level)) {
      if (level > 0 &&
          (key < meta.smallest_key || key > meta.largest_key)) {
        continue;
      }
      auto it = std::find_if(readers_.begin(), readers_.end(),
                             [&](const auto& r) {
                               return r.first == meta.file_number;
                             });
      if (it == readers_.end()) {
        return Status::Internal("missing reader for table " +
                                std::to_string(meta.file_number));
      }
      Result<std::optional<std::string>> lookup =
          it->second->Get(key, options.verify_checksums);
      if (!lookup.ok()) {
        // Corruption (bad block checksum, truncated table) surfaces
        // here; flag the file so an operator can quarantine it.
        log_->Log(obs::LogLevel::kError, "table_get_failed",
                  {{"table", meta.file_number},
                   {"level", meta.level},
                   {"status", lookup.status().message()}});
        return lookup.status();
      }
      std::optional<std::string> tagged = std::move(lookup).value();
      if (tagged.has_value()) {
        if (MemTable::IsTombstoneValue(*tagged)) {
          return std::optional<std::string>();
        }
        return std::optional<std::string>(
            std::string(MemTable::StripTag(*tagged)));
      }
    }
  }
  return std::optional<std::string>();
}

std::unique_ptr<Iterator> StorageEngine::NewIterator() {
  if (options_.paranoid_checks && !bg_error_.ok()) {
    return NewErrorIterator(
        bg_error_.WithContext("read rejected: paranoid engine degraded"));
  }
  std::vector<std::unique_ptr<Iterator>> children;
  children.push_back(memtable_->NewIterator());
  for (int level = 0; level <= 1; ++level) {
    for (const FileMeta& meta : manifest_.LevelFiles(level)) {
      auto it = std::find_if(readers_.begin(), readers_.end(),
                             [&](const auto& r) {
                               return r.first == meta.file_number;
                             });
      if (it == readers_.end()) {
        return NewErrorIterator(Status::Internal(
            "missing reader for table " + std::to_string(meta.file_number)));
      }
      children.push_back(it->second->NewIterator(
          /*fill_cache=*/true, options_.verify_checksums));
    }
  }
  return std::make_unique<LiveIterator>(
      NewMergingIterator(std::move(children)));
}

Result<FileMeta> StorageEngine::WriteTableFromIterator(Iterator* it,
                                                       int level,
                                                       bool drop_tombstones) {
  FileMeta meta;
  meta.file_number = manifest_.next_file_number++;
  meta.level = level;
  std::string path = TableFileName(dir_, meta.file_number);
  AUTHIDX_ASSIGN_OR_RETURN(auto file, env_->NewWritableFile(path));
  TableBuilder::Options topt;
  topt.block_bytes = options_.block_bytes;
  topt.restart_interval = options_.restart_interval;
  topt.bloom_bits_per_key = options_.bloom_bits_per_key;
  topt.compress = options_.compress_blocks;
  TableBuilder builder(topt, file.get());
  bool first = true;
  for (it->SeekToFirst(); it->Valid(); it->Next()) {
    if (drop_tombstones && MemTable::IsTombstoneValue(it->value())) {
      continue;
    }
    AUTHIDX_RETURN_NOT_OK(builder.Add(it->key(), it->value()));
    if (first) {
      meta.smallest_key = it->key();
      first = false;
    }
    meta.largest_key = it->key();
  }
  AUTHIDX_RETURN_NOT_OK(it->status());
  AUTHIDX_RETURN_NOT_OK(builder.Finish());
  AUTHIDX_RETURN_NOT_OK(file->Sync());
  AUTHIDX_RETURN_NOT_OK(file->Close());
  meta.entry_count = builder.entry_count();
  return meta;
}

Status StorageEngine::Flush() {
  AUTHIDX_RETURN_NOT_OK(WritableStatus());
  return RunBackgroundOp("flush", m_.flush_retries,
                         [this] { return FlushImpl(); });
}

Status StorageEngine::Compact() {
  AUTHIDX_RETURN_NOT_OK(Flush());
  return RunBackgroundOp("compaction", m_.compaction_retries,
                         [this] { return CompactImpl(); });
}

// Retry-safe: the memtable, live WAL, manifest, and reader set are only
// mutated after the last fallible step (the manifest save that commits
// both the new table and the fresh WAL), so a failed attempt leaves the
// engine exactly as it was and a re-run starts from scratch. Files
// orphaned by failed attempts are queued for best-effort removal.
Status StorageEngine::FlushImpl() {
  if (memtable_->entry_count() == 0) {
    if (wal_ == nullptr) {
      return SwitchToFreshWal();
    }
    return Status::OK();
  }
  obs::TraceSpan timer(nullptr, m_.flush_ns, "flush");
  uint64_t flushed_bytes = memtable_->ApproximateMemoryUsage();
  uint64_t flushed_entries = memtable_->entry_count();
  auto mem_iter = memtable_->NewIterator();
  // Keep tombstones: they must shadow older runs until compaction.
  AUTHIDX_ASSIGN_OR_RETURN(
      FileMeta meta, WriteTableFromIterator(mem_iter.get(), /*level=*/0,
                                            /*drop_tombstones=*/false));
  std::string table_path = TableFileName(dir_, meta.file_number);
  std::unique_ptr<TableReader> reader;
  if (meta.entry_count == 0) {
    // Nothing survived (possible only if the memtable was all-tombstone
    // and dropping was requested; defensive).
    ScheduleFileForRemoval(table_path);
  } else {
    Result<std::unique_ptr<TableReader>> opened =
        TableReader::Open(env_, table_path, &cache_, meta.file_number);
    if (!opened.ok()) {
      ScheduleFileForRemoval(table_path);
      return opened.status().WithContext("opening flushed table");
    }
    reader = std::move(opened).value();
    reader->BindBloomMetrics(m_.bloom_checks, m_.bloom_negatives);
    reader->BindCorruptionMetric(m_.corrupt_blocks);
  }
  // Stage the new table and a fresh WAL; one manifest save commits both.
  Manifest pending = manifest_;
  if (meta.entry_count > 0) {
    pending.files.push_back(meta);
  }
  uint64_t new_wal = pending.next_file_number++;
  std::string new_wal_path = WalFileName(dir_, new_wal);
  Result<std::unique_ptr<WalWriter>> fresh =
      WalWriter::Open(env_, new_wal_path);
  if (!fresh.ok()) {
    if (meta.entry_count > 0) {
      ScheduleFileForRemoval(table_path);
    }
    return fresh.status().WithContext("opening fresh WAL");
  }
  pending.wal_number = new_wal;
  Status s = pending.Save(env_, dir_);
  if (!s.ok()) {
    log_->Log(obs::LogLevel::kError, "manifest_save_failed",
              {{"wal", new_wal}, {"status", s.message()}});
    (*fresh)->Close().IgnoreError();
    ScheduleFileForRemoval(new_wal_path);
    if (meta.entry_count > 0) {
      ScheduleFileForRemoval(table_path);
    }
    return s;
  }
  // Commit: the durable state now holds the table + fresh WAL.
  uint64_t old_wal = manifest_.wal_number;
  manifest_ = std::move(pending);
  if (reader != nullptr) {
    readers_.emplace_back(meta.file_number, std::move(reader));
    ++stats_.l0_files;
  }
  if (wal_ != nullptr) {
    // The old WAL is superseded; a failed close only delays its GC.
    wal_->Close().IgnoreError();
  }
  wal_ = std::move(fresh).value();
  memtable_ = std::make_unique<MemTable>();
  stats_.memtable_bytes = 0;
  if (old_wal != 0) {
    ScheduleFileForRemoval(WalFileName(dir_, old_wal));
  }
  ++stats_.flushes;
  m_.flushes->Inc();
  m_.flush_bytes->Inc(flushed_bytes);
  RemoveObsoleteFiles();
  log_->Log(obs::LogLevel::kInfo, "memtable_flush",
            {{"table", meta.file_number},
             {"entries", flushed_entries},
             {"bytes", flushed_bytes},
             {"duration_ns", timer.Stop()},
             {"l0_files", stats_.l0_files}});
  return Status::OK();
}

// Retry-safe on the same commit-ordering discipline as FlushImpl. The
// surviving readers are reused (never closed and reopened), so even a
// failed compaction leaves every live table servable — reads stay up
// while the engine degrades.
Status StorageEngine::CompactImpl() {
  obs::TraceSpan timer(nullptr, m_.compaction_ns, "compaction");
  if (manifest_.files.size() <= 1 && stats_.l0_files == 0) {
    // Zero or one run and nothing pending: only rewrite if that run is
    // in level 0 (to drop tombstones and renumber into level 1).
    if (manifest_.files.empty() || manifest_.files[0].level == 1) {
      return Status::OK();
    }
  }
  if (manifest_.files.empty()) {
    return Status::OK();
  }
  // Merge newest-first so the merging iterator's "first child wins" rule
  // preserves recency.
  std::vector<std::unique_ptr<Iterator>> children;
  std::vector<FileMeta> ordered = manifest_.LevelFiles(0);
  for (const FileMeta& meta : manifest_.LevelFiles(1)) {
    ordered.push_back(meta);
  }
  uint64_t bytes_in = 0;
  for (const FileMeta& meta : ordered) {
    auto it = std::find_if(readers_.begin(), readers_.end(),
                           [&](const auto& r) {
                             return r.first == meta.file_number;
                           });
    if (it == readers_.end()) {
      return Status::Internal("missing reader for table " +
                              std::to_string(meta.file_number));
    }
    bytes_in += it->second->file_bytes();
    children.push_back(it->second->NewIterator(/*fill_cache=*/false));
  }
  auto merged = NewMergingIterator(std::move(children));
  AUTHIDX_ASSIGN_OR_RETURN(
      FileMeta meta, WriteTableFromIterator(merged.get(), /*level=*/1,
                                            /*drop_tombstones=*/true));
  std::string table_path = TableFileName(dir_, meta.file_number);
  std::unique_ptr<TableReader> reader;
  if (meta.entry_count == 0) {
    ScheduleFileForRemoval(table_path);
  } else {
    Result<std::unique_ptr<TableReader>> opened =
        TableReader::Open(env_, table_path, &cache_, meta.file_number);
    if (!opened.ok()) {
      ScheduleFileForRemoval(table_path);
      return opened.status().WithContext("opening compacted table");
    }
    reader = std::move(opened).value();
    reader->BindBloomMetrics(m_.bloom_checks, m_.bloom_negatives);
    reader->BindCorruptionMetric(m_.corrupt_blocks);
  }
  Manifest pending = manifest_;
  pending.files.clear();
  if (meta.entry_count > 0) {
    pending.files.push_back(meta);
  }
  Status s = pending.Save(env_, dir_);
  if (!s.ok()) {
    log_->Log(obs::LogLevel::kError, "manifest_save_failed",
              {{"compaction_output", meta.file_number},
               {"status", s.message()}});
    if (meta.entry_count > 0) {
      ScheduleFileForRemoval(table_path);
    }
    return s;
  }
  // Commit: manifest is durable; drop the superseded runs.
  std::vector<FileMeta> old_files = std::move(manifest_.files);
  manifest_ = std::move(pending);
  if (reader != nullptr) {
    readers_.emplace_back(meta.file_number, std::move(reader));
  }
  PruneReadersToManifest();
  for (const FileMeta& old : old_files) {
    cache_.EraseFile(old.file_number);
    ScheduleFileForRemoval(TableFileName(dir_, old.file_number));
  }
  ++stats_.compactions;
  m_.compactions->Inc();
  m_.compaction_bytes_in->Inc(bytes_in);
  uint64_t bytes_out = 0;
  if (meta.entry_count > 0) {
    Result<uint64_t> size = env_->FileSize(table_path);
    if (size.ok()) {  // Diagnostics only; never fail a committed compaction.
      bytes_out = *size;
      m_.compaction_bytes_out->Inc(bytes_out);
    }
  }
  RemoveObsoleteFiles();
  log_->Log(obs::LogLevel::kInfo, "compaction",
            {{"inputs", static_cast<uint64_t>(old_files.size())},
             {"bytes_in", bytes_in},
             {"bytes_out", bytes_out},
             {"entries_out", meta.entry_count},
             {"duration_ns", timer.Stop()}});
  return Status::OK();
}

Result<IntegrityReport> StorageEngine::VerifyIntegrity() {
  if (closed_) {
    return Status::FailedPrecondition("engine closed");
  }
  IntegrityReport report;
  // The durable manifest must parse (Load re-checks its CRC) and agree
  // with the live file set; a mismatch means the on-disk store would
  // come back different from what this engine is serving.
  Result<Manifest> disk = Manifest::Load(env_, dir_);
  if (!disk.ok()) {
    report.manifest_status = disk.status().WithContext("loading manifest");
  } else {
    auto file_set = [](const Manifest& m) {
      std::vector<std::pair<uint64_t, int>> set;
      set.reserve(m.files.size());
      for (const FileMeta& f : m.files) {
        set.emplace_back(f.file_number, f.level);
      }
      std::sort(set.begin(), set.end());
      return set;
    };
    if (file_set(*disk) != file_set(manifest_) ||
        disk->wal_number != manifest_.wal_number) {
      report.manifest_status = Status::Corruption(
          "on-disk manifest does not match the live engine state");
    }
  }
  // Every table: fresh reader (footer/index/filter re-validated), full
  // scan with the cache bypassed so each block's CRC is re-checked
  // against the bytes on disk, plus order/range/count checks against
  // the manifest. Per-file reporting: one corrupt table must not hide
  // damage in the others.
  for (const FileMeta& meta : manifest_.files) {
    FileIntegrity file;
    file.file_number = meta.file_number;
    file.level = meta.level;
    file.status = [&]() -> Status {
      Result<std::unique_ptr<TableReader>> opened = TableReader::Open(
          env_, TableFileName(dir_, meta.file_number));
      AUTHIDX_RETURN_NOT_OK(opened.status());
      (*opened)->BindCorruptionMetric(m_.corrupt_blocks);
      auto it = (*opened)->NewIterator(/*fill_cache=*/false,
                                       /*verify_checksums=*/true);
      std::string last_key;
      for (it->SeekToFirst(); it->Valid(); it->Next()) {
        std::string_view key = it->key();
        if (file.entries_scanned == 0) {
          if (key != meta.smallest_key) {
            return Status::Corruption("first key differs from manifest");
          }
        } else if (key <= last_key) {
          return Status::Corruption("keys out of order");
        }
        last_key.assign(key.data(), key.size());
        ++file.entries_scanned;
      }
      AUTHIDX_RETURN_NOT_OK(it->status());
      if (file.entries_scanned != meta.entry_count) {
        return Status::Corruption("entry count differs from manifest");
      }
      if (meta.entry_count > 0 && last_key != meta.largest_key) {
        return Status::Corruption("last key differs from manifest");
      }
      return Status::OK();
    }();
    if (!file.status.ok()) {
      ++report.corrupt_files;
      log_->Log(obs::LogLevel::kError, "table_corrupt",
                {{"table", meta.file_number},
                 {"level", meta.level},
                 {"entries_scanned", file.entries_scanned},
                 {"status", file.status.message()}});
    }
    report.files.push_back(std::move(file));
  }
  log_->Log(report.clean() ? obs::LogLevel::kInfo : obs::LogLevel::kError,
            "integrity_scan",
            {{"tables", static_cast<uint64_t>(report.files.size())},
             {"corrupt_tables", report.corrupt_files},
             {"manifest_ok", report.manifest_status.ok()}});
  return report;
}

Status StorageEngine::CreateCheckpoint(const std::string& checkpoint_dir) {
  AUTHIDX_RETURN_NOT_OK(WritableStatus());
  if (env_->FileExists(ManifestFileName(checkpoint_dir))) {
    return Status::AlreadyExists("checkpoint target already holds a store: " +
                                 checkpoint_dir);
  }
  // Everything in the memtable/WAL moves into immutable tables first, so
  // the checkpoint is exactly the manifest + table files.
  AUTHIDX_RETURN_NOT_OK(Flush());
  AUTHIDX_RETURN_NOT_OK(env_->CreateDirIfMissing(checkpoint_dir));
  Manifest snapshot = manifest_;
  snapshot.wal_number = 0;  // The copy starts with no WAL.
  for (const FileMeta& meta : snapshot.files) {
    AUTHIDX_ASSIGN_OR_RETURN(
        std::string contents,
        env_->ReadFileToString(TableFileName(dir_, meta.file_number)));
    AUTHIDX_RETURN_NOT_OK(env_->WriteStringToFileSync(
        TableFileName(checkpoint_dir, meta.file_number), contents));
  }
  return snapshot.Save(env_, checkpoint_dir);
}

Status StorageEngine::Close() {
  if (closed_) {
    return Status::OK();
  }
  // A degraded engine skips the flush (it would only re-fail) and
  // reports the sticky error; the WAL is still synced and closed
  // best-effort so appended records get their last push toward disk.
  Status s = bg_error_.ok() ? Flush() : bg_error_;
  if (wal_ != nullptr) {
    Status sync = wal_->Sync();
    Status c = wal_->Close();
    if (s.ok()) {
      s = sync.ok() ? c : sync;
    }
  }
  closed_ = true;
  if (s.ok()) {
    log_->Log(obs::LogLevel::kInfo, "engine_close", {{"dir", dir_}});
  } else {
    log_->Log(obs::LogLevel::kError, "engine_close_failed",
              {{"dir", dir_}, {"status", s.message()}});
  }
  return s;
}

}  // namespace authidx::storage
