#include "authidx/storage/cache.h"

#include "authidx/common/coding.h"
#include "authidx/common/strings.h"

namespace authidx::storage {

std::string BlockCache::MakeKey(uint64_t file_number, uint64_t offset) {
  std::string key;
  PutFixed64(&key, file_number);
  PutFixed64(&key, offset);
  return key;
}

std::shared_ptr<Block> BlockCache::Get(const std::string& key) {
  auto it = entries_.find(key);
  if (it == entries_.end()) {
    ++misses_;
    return nullptr;
  }
  ++hits_;
  // Move to front.
  lru_.splice(lru_.begin(), lru_, it->second);
  return it->second->block;
}

void BlockCache::Insert(const std::string& key,
                        std::shared_ptr<Block> block) {
  if (capacity_bytes_ == 0) {
    return;
  }
  auto it = entries_.find(key);
  if (it != entries_.end()) {
    size_bytes_ -= it->second->charge;
    lru_.erase(it->second);
    entries_.erase(it);
  }
  size_t charge = block->size_bytes() + key.size() + sizeof(Entry);
  lru_.push_front(Entry{key, std::move(block), charge});
  entries_[key] = lru_.begin();
  size_bytes_ += charge;
  EvictIfNeeded();
}

void BlockCache::EraseFile(uint64_t file_number) {
  std::string prefix;
  PutFixed64(&prefix, file_number);
  for (auto it = lru_.begin(); it != lru_.end();) {
    if (it->key.compare(0, prefix.size(), prefix) == 0) {
      size_bytes_ -= it->charge;
      entries_.erase(it->key);
      it = lru_.erase(it);
    } else {
      ++it;
    }
  }
}

void BlockCache::EvictIfNeeded() {
  while (size_bytes_ > capacity_bytes_ && !lru_.empty()) {
    const Entry& victim = lru_.back();
    size_bytes_ -= victim.charge;
    entries_.erase(victim.key);
    lru_.pop_back();
  }
}

}  // namespace authidx::storage
