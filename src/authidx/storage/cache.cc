#include "authidx/storage/cache.h"

#include "authidx/common/coding.h"
#include "authidx/common/strings.h"

namespace authidx::storage {

std::string BlockCache::MakeKey(uint64_t file_number, uint64_t offset) {
  std::string key;
  PutFixed64(&key, file_number);
  PutFixed64(&key, offset);
  return key;
}

void BlockCache::BindMetrics(obs::Counter* hits, obs::Counter* misses,
                             obs::Counter* evictions, obs::Gauge* bytes) {
  metric_hits_ = hits;
  metric_misses_ = misses;
  metric_evictions_ = evictions;
  metric_bytes_ = bytes;
  SyncBytesGauge();
}

void BlockCache::SyncBytesGauge() {
  if (metric_bytes_ != nullptr) {
    metric_bytes_->Set(static_cast<int64_t>(size_bytes_));
  }
}

std::shared_ptr<Block> BlockCache::Get(const std::string& key) {
  auto it = entries_.find(key);
  if (it == entries_.end()) {
    ++misses_;
    if (metric_misses_ != nullptr) {
      metric_misses_->Inc();
    }
    return nullptr;
  }
  ++hits_;
  if (metric_hits_ != nullptr) {
    metric_hits_->Inc();
  }
  // Move to front.
  lru_.splice(lru_.begin(), lru_, it->second);
  return it->second->block;
}

void BlockCache::Insert(const std::string& key,
                        std::shared_ptr<Block> block) {
  if (capacity_bytes_ == 0) {
    return;
  }
  auto it = entries_.find(key);
  if (it != entries_.end()) {
    size_bytes_ -= it->second->charge;
    lru_.erase(it->second);
    entries_.erase(it);
  }
  size_t charge = block->size_bytes() + key.size() + sizeof(Entry);
  lru_.push_front(Entry{key, std::move(block), charge});
  entries_[key] = lru_.begin();
  size_bytes_ += charge;
  EvictIfNeeded();
  SyncBytesGauge();
}

void BlockCache::EraseFile(uint64_t file_number) {
  std::string prefix;
  PutFixed64(&prefix, file_number);
  for (auto it = lru_.begin(); it != lru_.end();) {
    if (it->key.compare(0, prefix.size(), prefix) == 0) {
      size_bytes_ -= it->charge;
      entries_.erase(it->key);
      it = lru_.erase(it);
    } else {
      ++it;
    }
  }
  SyncBytesGauge();
}

void BlockCache::EvictIfNeeded() {
  while (size_bytes_ > capacity_bytes_ && !lru_.empty()) {
    const Entry& victim = lru_.back();
    size_bytes_ -= victim.charge;
    entries_.erase(victim.key);
    lru_.pop_back();
    ++evictions_;
    if (metric_evictions_ != nullptr) {
      metric_evictions_->Inc();
    }
  }
}

}  // namespace authidx::storage
