#include "authidx/storage/cache.h"

#include "authidx/common/hash.h"

namespace authidx::storage {

BlockCache::BlockCache(size_t capacity_bytes)
    : capacity_bytes_(capacity_bytes),
      shard_capacity_bytes_(capacity_bytes / kNumShards) {}

BlockCacheKey BlockCache::MakeKey(uint64_t file_number, uint64_t offset) {
  BlockCacheKey key;
  key.file_number = file_number;
  key.offset = offset;
  // Two rounds of splitmix64 finalizer: cheap, and mixes the file number
  // into every bit so both the shard (top bits) and the map bucket (low
  // bits) spread well even for sequential offsets.
  key.hash = Mix64(offset + Mix64(file_number ^ 0x9E3779B97F4A7C15ULL));
  return key;
}

void BlockCache::BindMetrics(obs::Counter* hits, obs::Counter* misses,
                             obs::Counter* evictions, obs::Gauge* bytes) {
  metric_hits_ = hits;
  metric_misses_ = misses;
  metric_evictions_ = evictions;
  metric_bytes_ = bytes;
  SyncBytesGauge();
}

void BlockCache::SyncBytesGauge() {
  if (metric_bytes_ != nullptr) {
    metric_bytes_->Set(
        static_cast<int64_t>(size_bytes_.load(std::memory_order_relaxed)));
  }
}

std::shared_ptr<Block> BlockCache::Get(const BlockCacheKey& key) {
  Shard& shard = shards_[ShardIndex(key)];
  std::shared_ptr<Block> block;
  {
    MutexLock lock(shard.mu);
    auto it = shard.entries.find(key);
    if (it != shard.entries.end()) {
      // Move to front.
      shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
      block = it->second->block;
    }
  }
  if (block == nullptr) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    if (metric_misses_ != nullptr) {
      metric_misses_->Inc();
    }
    return nullptr;
  }
  hits_.fetch_add(1, std::memory_order_relaxed);
  if (metric_hits_ != nullptr) {
    metric_hits_->Inc();
  }
  return block;
}

void BlockCache::Insert(const BlockCacheKey& key,
                        std::shared_ptr<Block> block) {
  if (capacity_bytes_ == 0) {
    return;
  }
  Shard& shard = shards_[ShardIndex(key)];
  size_t charge = block->size_bytes() + sizeof(BlockCacheKey) + sizeof(Entry);
  {
    MutexLock lock(shard.mu);
    auto it = shard.entries.find(key);
    if (it != shard.entries.end()) {
      shard.size_bytes -= it->second->charge;
      size_bytes_.fetch_sub(it->second->charge, std::memory_order_relaxed);
      entry_count_.fetch_sub(1, std::memory_order_relaxed);
      shard.lru.erase(it->second);
      shard.entries.erase(it);
    }
    shard.lru.push_front(Entry{key, std::move(block), charge});
    shard.entries[key] = shard.lru.begin();
    shard.size_bytes += charge;
    size_bytes_.fetch_add(charge, std::memory_order_relaxed);
    entry_count_.fetch_add(1, std::memory_order_relaxed);
    EvictShardIfNeeded(shard);
  }
  SyncBytesGauge();
}

void BlockCache::EraseFile(uint64_t file_number) {
  for (Shard& shard : shards_) {
    MutexLock lock(shard.mu);
    for (auto it = shard.lru.begin(); it != shard.lru.end();) {
      if (it->key.file_number == file_number) {
        shard.size_bytes -= it->charge;
        size_bytes_.fetch_sub(it->charge, std::memory_order_relaxed);
        entry_count_.fetch_sub(1, std::memory_order_relaxed);
        shard.entries.erase(it->key);
        it = shard.lru.erase(it);
      } else {
        ++it;
      }
    }
  }
  SyncBytesGauge();
}

void BlockCache::EvictShardIfNeeded(Shard& shard) {
  while (shard.size_bytes > shard_capacity_bytes_ && !shard.lru.empty()) {
    const Entry& victim = shard.lru.back();
    shard.size_bytes -= victim.charge;
    size_bytes_.fetch_sub(victim.charge, std::memory_order_relaxed);
    entry_count_.fetch_sub(1, std::memory_order_relaxed);
    shard.entries.erase(victim.key);
    shard.lru.pop_back();
    evictions_.fetch_add(1, std::memory_order_relaxed);
    if (metric_evictions_ != nullptr) {
      metric_evictions_->Inc();
    }
  }
}

}  // namespace authidx::storage
