#ifndef AUTHIDX_STORAGE_ITERATOR_H_
#define AUTHIDX_STORAGE_ITERATOR_H_

#include <memory>
#include <string_view>
#include <vector>

#include "authidx/common/status.h"

namespace authidx::storage {

/// Ordered cursor over (key, value) pairs, the LevelDB-style interface
/// shared by memtable, table and merging iterators. Returned views stay
/// valid until the next mutating call on the iterator.
class Iterator {
 public:
  virtual ~Iterator() = default;

  virtual bool Valid() const = 0;
  virtual void SeekToFirst() = 0;
  /// Positions at the first key >= `target`.
  virtual void Seek(std::string_view target) = 0;
  virtual void Next() = 0;
  virtual std::string_view key() const = 0;
  virtual std::string_view value() const = 0;
  /// Non-OK if the cursor encountered corruption or I/O errors.
  virtual Status status() const = 0;
};

/// Merges `children` into one sorted stream. On duplicate keys the child
/// with the smaller index wins (callers order children newest-first), and
/// the duplicates from older children are skipped.
std::unique_ptr<Iterator> NewMergingIterator(
    std::vector<std::unique_ptr<Iterator>> children);

/// An always-invalid iterator carrying `status` (error propagation).
std::unique_ptr<Iterator> NewErrorIterator(Status status);

}  // namespace authidx::storage

#endif  // AUTHIDX_STORAGE_ITERATOR_H_
