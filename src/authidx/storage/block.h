#ifndef AUTHIDX_STORAGE_BLOCK_H_
#define AUTHIDX_STORAGE_BLOCK_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "authidx/common/result.h"
#include "authidx/storage/iterator.h"

namespace authidx::storage {

/// Builds one sorted block with LevelDB-style prefix compression:
///
///   entry  := shared (varint32) | non_shared (varint32)
///           | value_len (varint32) | key_suffix | value
///   block  := entry* | restart_offset (fixed32)* | num_restarts (fixed32)
///
/// Every `restart_interval`-th key is stored uncompressed (a restart
/// point); Seek binary-searches the restart array and scans forward.
class BlockBuilder {
 public:
  explicit BlockBuilder(int restart_interval = 16);

  /// Adds a key >= every previously added key.
  void Add(std::string_view key, std::string_view value);

  /// Appends the restart trailer and returns the finished block contents.
  /// The builder must be Reset() before reuse.
  std::string_view Finish();

  void Reset();

  /// Current serialized size estimate (including trailer).
  size_t CurrentSizeEstimate() const;

  bool empty() const { return counter_ == 0 && restarts_.size() == 1; }

 private:
  const int restart_interval_;
  std::string buffer_;
  std::vector<uint32_t> restarts_;
  int counter_ = 0;  // Entries since last restart.
  std::string last_key_;
  bool finished_ = false;
};

/// Immutable read-side view of a finished block. Owns a copy of the
/// block contents.
class Block {
 public:
  /// Validates the trailer; returns Corruption for malformed blocks.
  static Result<std::unique_ptr<Block>> Parse(std::string contents);

  /// Iterator over the block's entries.
  std::unique_ptr<Iterator> NewIterator() const;

  size_t size_bytes() const { return contents_.size(); }

 private:
  class Iter;

  Block(std::string contents, uint32_t num_restarts, size_t restarts_offset)
      : contents_(std::move(contents)),
        num_restarts_(num_restarts),
        restarts_offset_(restarts_offset) {}

  std::string contents_;
  uint32_t num_restarts_;
  size_t restarts_offset_;
};

}  // namespace authidx::storage

#endif  // AUTHIDX_STORAGE_BLOCK_H_
