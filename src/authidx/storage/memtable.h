#ifndef AUTHIDX_STORAGE_MEMTABLE_H_
#define AUTHIDX_STORAGE_MEMTABLE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>

#include "authidx/common/arena.h"
#include "authidx/common/mutex.h"
#include "authidx/common/random.h"
#include "authidx/common/thread_annotations.h"
#include "authidx/storage/iterator.h"

namespace authidx::storage {

/// Mutable in-memory write buffer: an arena-backed skiplist from user key
/// to value-or-tombstone. Overwrites update the node's value view in
/// place (the superseded copy stays in the arena until the memtable is
/// dropped, the usual arena trade-off).
///
/// Thread-safe via an internal SharedMutex: Put/Delete take it
/// exclusively, Get/iterators/size accessors take it shared, so any
/// number of readers proceed in parallel with each other. The protocol
/// is machine-checked: every skiplist field is AUTHIDX_GUARDED_BY(mu_)
/// and the traversal/mutation helpers carry REQUIRES annotations. Arena
/// memory is never freed while the memtable lives, so string_views
/// handed out to readers stay valid even if the entry is overwritten
/// afterwards.
class MemTable {
 public:
  MemTable();

  MemTable(const MemTable&) = delete;
  MemTable& operator=(const MemTable&) = delete;

  /// Inserts or overwrites `key` -> `value`.
  void Put(std::string_view key, std::string_view value);

  /// Records a deletion marker for `key` (shadows older tables).
  void Delete(std::string_view key);

  /// Lookup outcome distinguishing "no knowledge" from "known deleted".
  enum class GetResult { kFound, kDeleted, kNotFound };

  /// Point lookup; fills `*value` only for kFound.
  GetResult Get(std::string_view key, std::string* value) const;

  size_t entry_count() const {
    ReaderMutexLock lock(mu_);
    return count_;
  }
  size_t ApproximateMemoryUsage() const {
    ReaderMutexLock lock(mu_);
    return arena_.MemoryUsage();
  }

  /// Iterator yielding keys in order. Tombstones appear with
  /// `IsTombstoneValue(value()) == true`; callers (flush, merging reads)
  /// decide how to interpret them.
  std::unique_ptr<Iterator> NewIterator() const;

  /// Tag helpers for the internal value encoding (1 tag byte + payload).
  static std::string_view StripTag(std::string_view tagged);
  static bool IsTombstoneValue(std::string_view tagged);
  static std::string TagPut(std::string_view value);
  static std::string TagTombstone();

 private:
  struct Node;
  class Iter;

  static constexpr int kMaxHeight = 12;

  Node* NewNode(std::string_view key, std::string_view tagged_value,
                int height) AUTHIDX_REQUIRES(mu_);
  int RandomHeight() AUTHIDX_REQUIRES(mu_);
  /// Returns first node with key >= `key`, filling prev[] when not null.
  Node* FindGreaterOrEqual(std::string_view key, Node** prev) const
      AUTHIDX_REQUIRES_SHARED(mu_);
  void Upsert(std::string_view key, std::string_view tagged_value)
      AUTHIDX_REQUIRES(mu_);

  mutable SharedMutex mu_;
  Arena arena_ AUTHIDX_GUARDED_BY(mu_);
  Random rng_ AUTHIDX_GUARDED_BY(mu_);
  Node* head_ AUTHIDX_GUARDED_BY(mu_);
  int height_ AUTHIDX_GUARDED_BY(mu_) = 1;
  size_t count_ AUTHIDX_GUARDED_BY(mu_) = 0;
};

}  // namespace authidx::storage

#endif  // AUTHIDX_STORAGE_MEMTABLE_H_
