#ifndef AUTHIDX_STORAGE_MEMTABLE_H_
#define AUTHIDX_STORAGE_MEMTABLE_H_

#include <cstdint>
#include <memory>
#include <shared_mutex>
#include <string>
#include <string_view>

#include "authidx/common/arena.h"
#include "authidx/common/random.h"
#include "authidx/storage/iterator.h"

namespace authidx::storage {

/// Mutable in-memory write buffer: an arena-backed skiplist from user key
/// to value-or-tombstone. Overwrites update the node's value view in
/// place (the superseded copy stays in the arena until the memtable is
/// dropped, the usual arena trade-off).
///
/// Thread-safe via an internal shared_mutex: Put/Delete take it
/// exclusively, Get/iterators/size accessors take it shared, so any
/// number of readers proceed in parallel with each other. Arena memory
/// is never freed while the memtable lives, so string_views handed out
/// to readers stay valid even if the entry is overwritten afterwards.
class MemTable {
 public:
  MemTable();

  MemTable(const MemTable&) = delete;
  MemTable& operator=(const MemTable&) = delete;

  /// Inserts or overwrites `key` -> `value`.
  void Put(std::string_view key, std::string_view value);

  /// Records a deletion marker for `key` (shadows older tables).
  void Delete(std::string_view key);

  /// Lookup outcome distinguishing "no knowledge" from "known deleted".
  enum class GetResult { kFound, kDeleted, kNotFound };

  /// Point lookup; fills `*value` only for kFound.
  GetResult Get(std::string_view key, std::string* value) const;

  size_t entry_count() const {
    std::shared_lock<std::shared_mutex> lock(mu_);
    return count_;
  }
  size_t ApproximateMemoryUsage() const {
    std::shared_lock<std::shared_mutex> lock(mu_);
    return arena_.MemoryUsage();
  }

  /// Iterator yielding keys in order. Tombstones appear with
  /// `IsTombstoneValue(value()) == true`; callers (flush, merging reads)
  /// decide how to interpret them.
  std::unique_ptr<Iterator> NewIterator() const;

  /// Tag helpers for the internal value encoding (1 tag byte + payload).
  static std::string_view StripTag(std::string_view tagged);
  static bool IsTombstoneValue(std::string_view tagged);
  static std::string TagPut(std::string_view value);
  static std::string TagTombstone();

 private:
  struct Node;
  class Iter;

  static constexpr int kMaxHeight = 12;

  Node* NewNode(std::string_view key, std::string_view tagged_value,
                int height);
  int RandomHeight();
  /// Returns first node with key >= `key`, filling prev[] when not null.
  Node* FindGreaterOrEqual(std::string_view key, Node** prev) const;
  void Upsert(std::string_view key, std::string_view tagged_value);

  mutable std::shared_mutex mu_;
  Arena arena_;
  Random rng_;
  Node* head_;
  int height_ = 1;
  size_t count_ = 0;
};

}  // namespace authidx::storage

#endif  // AUTHIDX_STORAGE_MEMTABLE_H_
