#ifndef AUTHIDX_STORAGE_WAL_H_
#define AUTHIDX_STORAGE_WAL_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <string_view>

#include "authidx/common/env.h"
#include "authidx/common/result.h"

namespace authidx::storage {

/// Write-ahead log. Each record is framed as
///
///   masked_crc32c (fixed32, over payload) | length (fixed32) | payload
///
/// The masked CRC (crc32c::Mask) prevents a log embedded in another log
/// from validating. Readers stop cleanly at a truncated or corrupt tail,
/// which is exactly the crash-recovery contract: everything before the
/// damage is recovered, the damaged suffix is discarded and reported.
class WalWriter {
 public:
  /// Creates (truncates) the log at `path`.
  static Result<std::unique_ptr<WalWriter>> Open(Env* env,
                                                 const std::string& path);

  /// Appends one record. Durability requires Sync().
  Status Append(std::string_view record);

  /// fdatasyncs all appended records.
  Status Sync();

  Status Close();

  uint64_t bytes_written() const { return bytes_written_; }

 private:
  explicit WalWriter(std::unique_ptr<WritableFile> file)
      : file_(std::move(file)) {}

  std::unique_ptr<WritableFile> file_;
  uint64_t bytes_written_ = 0;
};

/// Result of replaying a WAL.
struct WalReplayStats {
  uint64_t records = 0;
  uint64_t bytes = 0;
  /// True when the log ended with a damaged/truncated record that was
  /// discarded (expected after a crash mid-append).
  bool tail_corruption = false;
};

/// Reads `path`, invoking `sink` for each intact record in order.
/// Corruption in the middle of the log (not merely the tail) still stops
/// the replay but is reported identically; the stats tell callers how
/// much was recovered.
Result<WalReplayStats> ReplayWal(
    Env* env, const std::string& path,
    const std::function<Status(std::string_view)>& sink);

}  // namespace authidx::storage

#endif  // AUTHIDX_STORAGE_WAL_H_
