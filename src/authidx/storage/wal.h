#ifndef AUTHIDX_STORAGE_WAL_H_
#define AUTHIDX_STORAGE_WAL_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <string_view>

#include "authidx/common/env.h"
#include "authidx/common/result.h"

namespace authidx::storage {

/// Bytes of the per-record framing prologue: masked CRC32C (4) plus
/// payload length (4). Public so replication can walk WAL files record
/// by record from an arbitrary byte offset (see ParseWalRecord).
inline constexpr size_t kWalRecordHeaderBytes = 8;

/// A durable coordinate in the WAL stream: byte `offset` into the log
/// file numbered `wal_number`. Positions order first by file number
/// (WAL switches allocate strictly increasing numbers), then by offset.
/// {0, 0} is the "nothing shipped yet" sentinel.
struct WalPosition {
  uint64_t wal_number = 0;
  uint64_t offset = 0;

  friend bool operator==(const WalPosition& a, const WalPosition& b) {
    return a.wal_number == b.wal_number && a.offset == b.offset;
  }
  friend bool operator!=(const WalPosition& a, const WalPosition& b) {
    return !(a == b);
  }
  friend bool operator<(const WalPosition& a, const WalPosition& b) {
    return a.wal_number != b.wal_number ? a.wal_number < b.wal_number
                                        : a.offset < b.offset;
  }
  friend bool operator<=(const WalPosition& a, const WalPosition& b) {
    return a < b || a == b;
  }
};

/// Outcome of one ParseWalRecord step.
enum class WalParseOutcome {
  /// A complete, CRC-valid record was parsed.
  kRecord,
  /// The input ends before a complete record; more bytes (or the next
  /// WAL file) are needed.
  kNeedMore,
  /// The framing or CRC is damaged at the front of the input.
  kCorrupt,
};

/// Attempts to parse one CRC-framed record from the front of `input`.
/// On kRecord, `*payload` receives the record bytes (aliasing `input`)
/// and `*consumed` the encoded size (header + payload) to advance by.
WalParseOutcome ParseWalRecord(std::string_view input,
                               std::string_view* payload, size_t* consumed);

/// Write-ahead log. Each record is framed as
///
///   masked_crc32c (fixed32, over payload) | length (fixed32) | payload
///
/// The masked CRC (crc32c::Mask) prevents a log embedded in another log
/// from validating. Readers stop cleanly at a truncated or corrupt tail,
/// which is exactly the crash-recovery contract: everything before the
/// damage is recovered, the damaged suffix is discarded and reported.
class WalWriter {
 public:
  /// Creates (truncates) the log at `path`.
  static Result<std::unique_ptr<WalWriter>> Open(Env* env,
                                                 const std::string& path);

  /// Appends one record. Durability requires Sync().
  Status Append(std::string_view record);

  /// Pushes appended records out of the user-space buffer into the OS
  /// (no fsync). After this, same-host readers — crucially the
  /// replication source, which walks the file behind the committed
  /// frontier — see every appended byte.
  Status Flush();

  /// fdatasyncs all appended records.
  Status Sync();

  Status Close();

  uint64_t bytes_written() const { return bytes_written_; }

 private:
  explicit WalWriter(std::unique_ptr<WritableFile> file)
      : file_(std::move(file)) {}

  std::unique_ptr<WritableFile> file_;
  uint64_t bytes_written_ = 0;
};

/// Result of replaying a WAL.
struct WalReplayStats {
  uint64_t records = 0;
  uint64_t bytes = 0;
  /// True when the log ended with a damaged/truncated record that was
  /// discarded (expected after a crash mid-append).
  bool tail_corruption = false;
};

/// Reads `path`, invoking `sink` for each intact record in order.
/// Corruption in the middle of the log (not merely the tail) still stops
/// the replay but is reported identically; the stats tell callers how
/// much was recovered.
Result<WalReplayStats> ReplayWal(
    Env* env, const std::string& path,
    const std::function<Status(std::string_view)>& sink);

}  // namespace authidx::storage

#endif  // AUTHIDX_STORAGE_WAL_H_
