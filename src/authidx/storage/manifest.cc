#include "authidx/storage/manifest.h"

#include <algorithm>

#include "authidx/common/coding.h"
#include "authidx/common/crc32c.h"
#include "authidx/common/strings.h"

namespace authidx::storage {

namespace {
// Version 2 appends imm_wal_number after wal_number; version-1 manifests
// (no immutable-memtable handoff) still decode, with imm_wal_number = 0.
constexpr uint32_t kManifestVersion = 2;
constexpr uint32_t kManifestVersionV1 = 1;
// Defensive cap against corrupt counts.
constexpr uint64_t kMaxFiles = 1 << 20;
}  // namespace

std::string Manifest::Encode() const {
  std::string body;
  PutVarint32(&body, kManifestVersion);
  PutVarint64(&body, next_file_number);
  PutVarint64(&body, wal_number);
  PutVarint64(&body, imm_wal_number);
  PutVarint64(&body, files.size());
  for (const FileMeta& meta : files) {
    PutVarint64(&body, meta.file_number);
    PutVarint32(&body, static_cast<uint32_t>(meta.level));
    PutVarint64(&body, meta.entry_count);
    PutLengthPrefixed(&body, meta.smallest_key);
    PutLengthPrefixed(&body, meta.largest_key);
  }
  std::string out = body;
  PutFixed32(&out, crc32c::Mask(crc32c::Value(body)));
  return out;
}

Result<Manifest> Manifest::Decode(std::string_view data) {
  if (data.size() < 4) {
    return Status::Corruption("manifest too small");
  }
  std::string_view body = data.substr(0, data.size() - 4);
  uint32_t expected =
      crc32c::Unmask(DecodeFixed32(data.data() + data.size() - 4));
  if (crc32c::Value(body) != expected) {
    return Status::Corruption("manifest crc mismatch");
  }
  Manifest manifest;
  uint32_t version = 0;
  AUTHIDX_RETURN_NOT_OK(GetVarint32(&body, &version));
  if (version != kManifestVersion && version != kManifestVersionV1) {
    return Status::Corruption("unknown manifest version " +
                              std::to_string(version));
  }
  AUTHIDX_RETURN_NOT_OK(GetVarint64(&body, &manifest.next_file_number));
  AUTHIDX_RETURN_NOT_OK(GetVarint64(&body, &manifest.wal_number));
  if (version >= kManifestVersion) {
    AUTHIDX_RETURN_NOT_OK(GetVarint64(&body, &manifest.imm_wal_number));
  }
  uint64_t count = 0;
  AUTHIDX_RETURN_NOT_OK(GetVarint64(&body, &count));
  if (count > kMaxFiles) {
    return Status::Corruption("implausible manifest file count");
  }
  manifest.files.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    FileMeta meta;
    uint32_t level = 0;
    std::string_view piece;
    AUTHIDX_RETURN_NOT_OK(GetVarint64(&body, &meta.file_number));
    AUTHIDX_RETURN_NOT_OK(GetVarint32(&body, &level));
    meta.level = static_cast<int>(level);
    AUTHIDX_RETURN_NOT_OK(GetVarint64(&body, &meta.entry_count));
    AUTHIDX_RETURN_NOT_OK(GetLengthPrefixed(&body, &piece));
    meta.smallest_key = piece;
    AUTHIDX_RETURN_NOT_OK(GetLengthPrefixed(&body, &piece));
    meta.largest_key = piece;
    manifest.files.push_back(std::move(meta));
  }
  if (!body.empty()) {
    return Status::Corruption("trailing bytes in manifest");
  }
  return manifest;
}

Result<Manifest> Manifest::Load(Env* env, const std::string& dir) {
  std::string path = ManifestFileName(dir);
  if (!env->FileExists(path)) {
    return Status::NotFound("no manifest in " + dir);
  }
  AUTHIDX_ASSIGN_OR_RETURN(std::string data, env->ReadFileToString(path));
  return Decode(data);
}

Status Manifest::Save(Env* env, const std::string& dir) const {
  return env->WriteStringToFileSync(ManifestFileName(dir), Encode());
}

std::vector<FileMeta> Manifest::LevelFiles(int level) const {
  std::vector<FileMeta> out;
  for (const FileMeta& meta : files) {
    if (meta.level == level) {
      out.push_back(meta);
    }
  }
  if (level == 0) {
    std::sort(out.begin(), out.end(), [](const FileMeta& a, const FileMeta& b) {
      return a.file_number > b.file_number;  // Newest first.
    });
  } else {
    std::sort(out.begin(), out.end(), [](const FileMeta& a, const FileMeta& b) {
      return a.smallest_key < b.smallest_key;
    });
  }
  return out;
}

std::string TableFileName(const std::string& dir, uint64_t number) {
  return dir + "/" + StringPrintf("%06llu.tbl",
                                  static_cast<unsigned long long>(number));
}

std::string WalFileName(const std::string& dir, uint64_t number) {
  return dir + "/" + StringPrintf("%06llu.wal",
                                  static_cast<unsigned long long>(number));
}

std::string ManifestFileName(const std::string& dir) {
  return dir + "/MANIFEST";
}

}  // namespace authidx::storage
