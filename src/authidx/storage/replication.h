#ifndef AUTHIDX_STORAGE_REPLICATION_H_
#define AUTHIDX_STORAGE_REPLICATION_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "authidx/common/env.h"
#include "authidx/common/result.h"
#include "authidx/storage/engine.h"
#include "authidx/storage/wal.h"

namespace authidx::storage {

/// One batch of committed WAL records read by a ReplicationSource.
struct ReplicationBatch {
  /// Full WAL records (op byte + payload), in commit order. Each one is
  /// accepted verbatim by StorageEngine::ApplyReplicated.
  std::vector<std::string> records;
  /// Cursor after the last record in `records`: pass this as `from` to
  /// the next ReadBatch call, and persist it (after applying) as the
  /// follower's durable position.
  WalPosition end;
  /// The primary's committed frontier at read time. `end == committed`
  /// means the follower is caught up; the gap is the replication lag.
  WalPosition committed;
};

/// Reads committed WAL records from a primary engine's log files,
/// starting at an arbitrary durable cursor and walking across WAL
/// switches. The caller is responsible for pinning (PinWalsFrom) the
/// WALs at or after the oldest outstanding cursor; a cursor whose WAL
/// file has already been garbage-collected yields NotFound, the signal
/// to re-bootstrap the follower from a snapshot.
///
/// Thread-compatible, not thread-safe: one source per subscriber (the
/// engine calls it makes are themselves thread-safe).
class ReplicationSource {
 public:
  /// `env` nullptr means Env::Default(); pass the engine's own Env when
  /// it was opened with an injected one (fault tests).
  ReplicationSource(StorageEngine* engine, Env* env = nullptr);

  /// Reads up to `max_records`/`max_bytes` of committed records with
  /// `from` as the next unread byte. Never ships past the committed
  /// frontier (bytes beyond it may belong to a write that fails and is
  /// never acked). An up-to-date cursor yields an empty batch with
  /// `end == from`. Errors:
  ///   * NotFound    — the cursor's WAL file no longer exists (GC'd or
  ///                   the primary restarted): re-bootstrap.
  ///   * Corruption  — damaged bytes below the committed frontier.
  Result<ReplicationBatch> ReadBatch(WalPosition from, size_t max_records,
                                     size_t max_bytes);

 private:
  StorageEngine* engine_;
  Env* env_;
};

/// Applies shipped records into a follower engine (opened with
/// `EngineOptions::apply_only`) and persists the follower's replication
/// cursor in a `REPL_POSITION` sidecar file next to the store.
///
/// Crash-consistency contract: commit the position only *after* the
/// records up to it have been applied (and synced per the follower's
/// sync policy). A crash between apply and commit re-delivers records
/// the engine already holds — re-applying them writes the same keys
/// with the same values, so the replay is a no-op by state.
class ReplicationApplier {
 public:
  /// `dir` is the follower's store directory; `env` nullptr means
  /// Env::Default().
  ReplicationApplier(StorageEngine* engine, std::string dir,
                     Env* env = nullptr);

  /// Applies one shipped record through the follower's own WAL.
  Status Apply(std::string_view record);

  /// Reads the durable cursor; {0, 0} when no sidecar exists yet (a
  /// fresh follower that needs a snapshot bootstrap).
  Result<WalPosition> LoadPosition();

  /// Durably replaces the cursor (atomic temp-write + fsync + rename).
  Status CommitPosition(WalPosition pos);

  /// The sidecar path (exposed for tests).
  std::string position_path() const;

 private:
  StorageEngine* engine_;
  std::string dir_;
  Env* env_;
};

}  // namespace authidx::storage

#endif  // AUTHIDX_STORAGE_REPLICATION_H_
