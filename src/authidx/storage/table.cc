#include "authidx/storage/table.h"

#include "authidx/common/coding.h"
#include "authidx/common/compress.h"
#include "authidx/common/crc32c.h"

namespace authidx::storage {

namespace {
constexpr uint64_t kTableMagic = 0x617574686964780aULL;  // "authidx\n"
constexpr char kBlockRaw = 'R';
constexpr char kBlockLz = 'L';
constexpr size_t kBlockTrailerSize = 5;  // type (1B) + masked crc32c (4B).
// Footer: filter handle + index handle (varints, padded) + magic.
constexpr size_t kFooterSize = 4 * 10 + 8;
}  // namespace

void BlockHandle::EncodeTo(std::string* dst) const {
  PutVarint64(dst, offset);
  PutVarint64(dst, size);
}

Result<BlockHandle> BlockHandle::DecodeFrom(std::string_view* input) {
  BlockHandle handle;
  AUTHIDX_RETURN_NOT_OK(GetVarint64(input, &handle.offset));
  AUTHIDX_RETURN_NOT_OK(GetVarint64(input, &handle.size));
  return handle;
}

TableBuilder::TableBuilder(Options options, WritableFile* file)
    : options_(options),
      file_(file),
      data_block_(options.restart_interval),
      index_block_(1) {}

TableBuilder::~TableBuilder() = default;

Status TableBuilder::Add(std::string_view key, std::string_view value) {
  if (finished_) {
    return Status::FailedPrecondition("table already finished");
  }
  if (entry_count_ > 0 && key <= std::string_view(last_key_)) {
    return Status::InvalidArgument("keys added out of order");
  }
  if (pending_index_entry_) {
    std::string encoded;
    pending_handle_.EncodeTo(&encoded);
    index_block_.Add(pending_index_key_, encoded);
    pending_index_entry_ = false;
  }
  data_block_.Add(key, value);
  keys_for_filter_.emplace_back(key);
  last_key_.assign(key);
  ++entry_count_;
  if (data_block_.CurrentSizeEstimate() >= options_.block_bytes) {
    AUTHIDX_RETURN_NOT_OK(FlushDataBlock());
  }
  return Status::OK();
}

Status TableBuilder::FlushDataBlock() {
  if (data_block_.empty()) {
    return Status::OK();
  }
  std::string_view contents = data_block_.Finish();
  AUTHIDX_RETURN_NOT_OK(WriteBlock(contents, &pending_handle_));
  data_block_.Reset();
  pending_index_key_ = last_key_;
  pending_index_entry_ = true;
  return Status::OK();
}

Status TableBuilder::WriteBlock(std::string_view contents,
                                BlockHandle* handle) {
  char type = kBlockRaw;
  std::string compressed;
  std::string_view payload = contents;
  if (options_.compress) {
    LzCompress(contents, &compressed);
    if (compressed.size() < contents.size()) {
      payload = compressed;
      type = kBlockLz;
      ++compressed_blocks_;
    }
  }
  handle->offset = offset_;
  handle->size = payload.size();
  AUTHIDX_RETURN_NOT_OK(file_->Append(payload));
  std::string trailer(1, type);
  uint32_t crc = crc32c::Extend(0, payload.data(), payload.size());
  crc = crc32c::Extend(crc, &type, 1);  // CRC covers payload + type.
  PutFixed32(&trailer, crc32c::Mask(crc));
  AUTHIDX_RETURN_NOT_OK(file_->Append(trailer));
  offset_ += payload.size() + kBlockTrailerSize;
  return Status::OK();
}

Status TableBuilder::Finish() {
  if (finished_) {
    return Status::FailedPrecondition("table already finished");
  }
  AUTHIDX_RETURN_NOT_OK(FlushDataBlock());
  if (pending_index_entry_) {
    std::string encoded;
    pending_handle_.EncodeTo(&encoded);
    index_block_.Add(pending_index_key_, encoded);
    pending_index_entry_ = false;
  }
  // Filter block.
  BloomFilter filter(keys_for_filter_.size(), options_.bloom_bits_per_key);
  for (const std::string& key : keys_for_filter_) {
    filter.Add(key);
  }
  BlockHandle filter_handle;
  AUTHIDX_RETURN_NOT_OK(WriteBlock(filter.Serialize(), &filter_handle));
  // Index block.
  BlockHandle index_handle;
  AUTHIDX_RETURN_NOT_OK(WriteBlock(index_block_.Finish(), &index_handle));
  // Footer.
  std::string footer;
  filter_handle.EncodeTo(&footer);
  index_handle.EncodeTo(&footer);
  footer.resize(kFooterSize - 8);  // Pad.
  PutFixed64(&footer, kTableMagic);
  AUTHIDX_RETURN_NOT_OK(file_->Append(footer));
  offset_ += footer.size();
  finished_ = true;
  return Status::OK();
}

Result<std::unique_ptr<TableReader>> TableReader::Open(
    Env* env, const std::string& path, BlockCache* cache,
    uint64_t file_number) {
  auto reader = std::unique_ptr<TableReader>(new TableReader());
  reader->cache_ = cache;
  reader->file_number_ = file_number;
  AUTHIDX_ASSIGN_OR_RETURN(reader->file_, env->NewRandomAccessFile(path));
  AUTHIDX_ASSIGN_OR_RETURN(reader->file_size_, reader->file_->Size());
  if (reader->file_size_ < kFooterSize) {
    return Status::Corruption("table file too small: " + path);
  }
  std::string scratch;
  std::string_view footer;
  AUTHIDX_RETURN_NOT_OK(reader->file_->Read(reader->file_size_ - kFooterSize,
                                            kFooterSize, &scratch, &footer));
  if (footer.size() != kFooterSize) {
    return Status::Corruption("short footer read: " + path);
  }
  if (DecodeFixed64(footer.data() + kFooterSize - 8) != kTableMagic) {
    return Status::Corruption("bad table magic: " + path);
  }
  std::string_view handles = footer;
  AUTHIDX_ASSIGN_OR_RETURN(BlockHandle filter_handle,
                           BlockHandle::DecodeFrom(&handles));
  AUTHIDX_ASSIGN_OR_RETURN(BlockHandle index_handle,
                           BlockHandle::DecodeFrom(&handles));
  AUTHIDX_ASSIGN_OR_RETURN(std::string filter_bytes,
                           reader->ReadBlockContents(filter_handle));
  AUTHIDX_ASSIGN_OR_RETURN(BloomFilter filter,
                           BloomFilter::Deserialize(filter_bytes));
  reader->filter_ = std::move(filter);
  AUTHIDX_ASSIGN_OR_RETURN(std::string index_bytes,
                           reader->ReadBlockContents(index_handle));
  AUTHIDX_ASSIGN_OR_RETURN(auto index_block,
                           Block::Parse(std::move(index_bytes)));
  reader->index_block_ = std::move(index_block);
  return reader;
}

Result<std::string> TableReader::ReadBlockContents(
    const BlockHandle& handle) const {
  // Any failure below means the bytes on disk do not match what the
  // builder wrote: count it so operators see corruption as a metric,
  // not just a per-request error.
  auto corrupt = [this](std::string msg) -> Status {
    if (metric_corrupt_blocks_ != nullptr) {
      metric_corrupt_blocks_->Inc();
    }
    return Status::Corruption(std::move(msg));
  };
  std::string scratch;
  std::string_view data;
  AUTHIDX_RETURN_NOT_OK(file_->Read(
      handle.offset, handle.size + kBlockTrailerSize, &scratch, &data));
  if (data.size() != handle.size + kBlockTrailerSize) {
    return corrupt("short block read");
  }
  std::string_view payload = data.substr(0, handle.size);
  char type = data[handle.size];
  uint32_t expected =
      crc32c::Unmask(DecodeFixed32(data.data() + handle.size + 1));
  uint32_t actual = crc32c::Extend(0, payload.data(), payload.size());
  actual = crc32c::Extend(actual, &type, 1);
  if (actual != expected) {
    return corrupt("block crc mismatch");
  }
  switch (type) {
    case kBlockRaw:
      return std::string(payload);
    case kBlockLz: {
      Result<std::string> decompressed = LzDecompress(payload);
      if (!decompressed.ok()) {
        return corrupt("block decompression failed: " +
                       decompressed.status().message());
      }
      return decompressed;
    }
    default:
      return corrupt("unknown block type");
  }
}

Result<std::shared_ptr<Block>> TableReader::ReadBlock(
    const BlockHandle& handle, bool fill_cache, bool verify_checksums) const {
  // Bulk scans (fill_cache == false) bypass the cache entirely so they
  // neither evict the hot working set nor skew hit statistics. Verified
  // reads bypass it in both directions: the point is to re-check the
  // bytes on disk, which a cache hit would short-circuit.
  BlockCacheKey cache_key;
  bool use_cache = cache_ != nullptr && fill_cache && !verify_checksums;
  if (use_cache) {
    cache_key = BlockCache::MakeKey(file_number_, handle.offset);
    std::shared_ptr<Block> cached = cache_->Get(cache_key);
    if (cached != nullptr) {
      return cached;
    }
  }
  AUTHIDX_ASSIGN_OR_RETURN(std::string contents, ReadBlockContents(handle));
  Result<std::unique_ptr<Block>> parsed = Block::Parse(std::move(contents));
  if (!parsed.ok()) {
    if (parsed.status().IsCorruption() && metric_corrupt_blocks_ != nullptr) {
      metric_corrupt_blocks_->Inc();
    }
    return parsed.status();
  }
  std::shared_ptr<Block> block = std::move(parsed).value();
  if (use_cache) {
    cache_->Insert(cache_key, block);
  }
  return block;
}

void TableReader::BindBloomMetrics(obs::Counter* checks,
                                   obs::Counter* negatives) {
  metric_bloom_checks_ = checks;
  metric_bloom_negatives_ = negatives;
}

void TableReader::BindCorruptionMetric(obs::Counter* corrupt_blocks) {
  metric_corrupt_blocks_ = corrupt_blocks;
}

Result<std::optional<std::string>> TableReader::Get(
    std::string_view key, bool verify_checksums) const {
  if (filter_.has_value()) {
    if (metric_bloom_checks_ != nullptr) {
      metric_bloom_checks_->Inc();
    }
    if (!filter_->MayContain(key)) {
      bloom_negatives_.fetch_add(1, std::memory_order_relaxed);
      if (metric_bloom_negatives_ != nullptr) {
        metric_bloom_negatives_->Inc();
      }
      return std::optional<std::string>();
    }
  }
  auto index_iter = index_block_->NewIterator();
  index_iter->Seek(key);
  if (!index_iter->Valid()) {
    return std::optional<std::string>();  // Past the last block.
  }
  std::string_view handle_data = index_iter->value();
  AUTHIDX_ASSIGN_OR_RETURN(BlockHandle handle,
                           BlockHandle::DecodeFrom(&handle_data));
  AUTHIDX_ASSIGN_OR_RETURN(
      auto block, ReadBlock(handle, /*fill_cache=*/true, verify_checksums));
  auto iter = block->NewIterator();
  iter->Seek(key);
  if (iter->Valid() && iter->key() == key) {
    return std::optional<std::string>(std::string(iter->value()));
  }
  AUTHIDX_RETURN_NOT_OK(iter->status());
  return std::optional<std::string>();
}

// Two-level iterator: walks the index block, materializing one data
// block at a time.
class TableReader::Iter final : public Iterator {
 public:
  Iter(const TableReader* table, bool fill_cache, bool verify_checksums)
      : table_(table),
        fill_cache_(fill_cache),
        verify_checksums_(verify_checksums),
        index_iter_(table->index_block_->NewIterator()) {}

  bool Valid() const override {
    return data_iter_ != nullptr && data_iter_->Valid();
  }

  void SeekToFirst() override {
    index_iter_->SeekToFirst();
    LoadDataBlock();
    if (data_iter_ != nullptr) {
      data_iter_->SeekToFirst();
    }
    SkipEmptyBlocksForward();
  }

  void Seek(std::string_view target) override {
    index_iter_->Seek(target);
    LoadDataBlock();
    if (data_iter_ != nullptr) {
      data_iter_->Seek(target);
    }
    SkipEmptyBlocksForward();
  }

  void Next() override {
    data_iter_->Next();
    SkipEmptyBlocksForward();
  }

  std::string_view key() const override { return data_iter_->key(); }
  std::string_view value() const override { return data_iter_->value(); }

  Status status() const override {
    if (!status_.ok()) {
      return status_;
    }
    if (data_iter_ != nullptr) {
      return data_iter_->status();
    }
    return index_iter_->status();
  }

 private:
  void LoadDataBlock() {
    data_block_.reset();
    data_iter_.reset();
    if (!index_iter_->Valid()) {
      return;
    }
    std::string_view handle_data = index_iter_->value();
    Result<BlockHandle> handle = BlockHandle::DecodeFrom(&handle_data);
    if (!handle.ok()) {
      status_ = handle.status();
      return;
    }
    Result<std::shared_ptr<Block>> block =
        table_->ReadBlock(*handle, fill_cache_, verify_checksums_);
    if (!block.ok()) {
      status_ = block.status();
      return;
    }
    data_block_ = std::move(block).value();
    data_iter_ = data_block_->NewIterator();
  }

  void SkipEmptyBlocksForward() {
    while (data_iter_ == nullptr || !data_iter_->Valid()) {
      if (!index_iter_->Valid() || !status_.ok()) {
        data_block_.reset();
        data_iter_.reset();
        return;
      }
      index_iter_->Next();
      LoadDataBlock();
      if (data_iter_ != nullptr) {
        data_iter_->SeekToFirst();
      }
    }
  }

  const TableReader* table_;
  bool fill_cache_;
  bool verify_checksums_;
  std::unique_ptr<Iterator> index_iter_;
  std::shared_ptr<Block> data_block_;
  std::unique_ptr<Iterator> data_iter_;
  Status status_;
};

std::unique_ptr<Iterator> TableReader::NewIterator(
    bool fill_cache, bool verify_checksums) const {
  return std::make_unique<Iter>(this, fill_cache, verify_checksums);
}

}  // namespace authidx::storage
