#include "authidx/storage/replication.h"

#include <algorithm>

#include "authidx/common/coding.h"
#include "authidx/storage/manifest.h"

namespace authidx::storage {

namespace {

constexpr char kPositionFileName[] = "REPL_POSITION";
constexpr size_t kPositionFileBytes = 16;  // Two fixed64s.

// Extracts `<digits>.wal` numbers from a directory listing.
bool ParseWalName(const std::string& name, uint64_t* number) {
  size_t dot = name.rfind('.');
  if (dot == std::string::npos || dot == 0 ||
      std::string_view(name).substr(dot) != ".wal") {
    return false;
  }
  uint64_t value = 0;
  for (size_t i = 0; i < dot; ++i) {
    if (name[i] < '0' || name[i] > '9') {
      return false;
    }
    value = value * 10 + static_cast<uint64_t>(name[i] - '0');
  }
  *number = value;
  return true;
}

}  // namespace

ReplicationSource::ReplicationSource(StorageEngine* engine, Env* env)
    : engine_(engine), env_(env != nullptr ? env : Env::Default()) {}

Result<ReplicationBatch> ReplicationSource::ReadBatch(WalPosition from,
                                                      size_t max_records,
                                                      size_t max_bytes) {
  if (from.wal_number == 0) {
    return Status::InvalidArgument(
        "position {0,0} needs a snapshot bootstrap, not a record read");
  }
  ReplicationBatch batch;
  batch.committed = engine_->CommittedWalPosition();
  batch.end = from;
  if (batch.committed < from) {
    // A cursor past the primary's frontier means the follower was fed
    // by a store that no longer exists (e.g. the primary lost its disk
    // and restarted empty). Only a bootstrap can reconcile that.
    return Status::NotFound(
        "cursor is past the primary's committed position");
  }
  // Walk WAL files from the cursor towards the committed frontier. The
  // numbers are not consecutive (file numbers are shared with tables),
  // so each hop consults the directory listing.
  size_t batch_bytes = 0;
  while (batch.records.size() < max_records && batch_bytes < max_bytes) {
    WalPosition& cur = batch.end;
    if (batch.committed.wal_number < cur.wal_number ||
        (batch.committed.wal_number == cur.wal_number &&
         batch.committed.offset <= cur.offset)) {
      break;  // Caught up.
    }
    const bool live = cur.wal_number == batch.committed.wal_number;
    Result<std::string> data =
        env_->ReadFileToString(WalFileName(engine_->dir(), cur.wal_number));
    if (!data.ok()) {
      if (data.status().IsNotFound()) {
        return Status::NotFound("WAL " + std::to_string(cur.wal_number) +
                                " is gone (garbage-collected)");
      }
      return data.status().WithContext("reading WAL for replication");
    }
    const uint64_t limit =
        live ? batch.committed.offset : static_cast<uint64_t>(data->size());
    if (cur.offset > limit) {
      return Status::NotFound("cursor offset " + std::to_string(cur.offset) +
                              " is past the end of WAL " +
                              std::to_string(cur.wal_number));
    }
    while (cur.offset < limit && batch.records.size() < max_records &&
           batch_bytes < max_bytes) {
      std::string_view window(data->data() + cur.offset,
                              static_cast<size_t>(limit - cur.offset));
      std::string_view payload;
      size_t consumed = 0;
      WalParseOutcome outcome = ParseWalRecord(window, &payload, &consumed);
      if (outcome != WalParseOutcome::kRecord) {
        // Every byte below the committed frontier (or below EOF of a
        // cleanly-sealed WAL) is a whole, CRC-valid record; anything
        // else is damage.
        return Status::Corruption(
            "damaged WAL record below the committed frontier in WAL " +
            std::to_string(cur.wal_number));
      }
      batch.records.emplace_back(payload);
      cur.offset += consumed;
      batch_bytes += consumed;
    }
    if (batch_bytes >= max_bytes || batch.records.size() >= max_records) {
      break;
    }
    if (!live && cur.offset == limit) {
      // Finished a sealed WAL: hop to the next one on disk.
      Result<std::vector<std::string>> listing =
          env_->ListDir(engine_->dir());
      AUTHIDX_RETURN_NOT_OK(listing.status());
      uint64_t next = 0;
      for (const std::string& name : *listing) {
        uint64_t number = 0;
        if (ParseWalName(name, &number) && number > cur.wal_number &&
            number <= batch.committed.wal_number &&
            (next == 0 || number < next)) {
          next = number;
        }
      }
      if (next == 0) {
        return Status::NotFound(
            "no WAL after " + std::to_string(cur.wal_number) +
            " on disk (retention gap)");
      }
      cur = {next, 0};
    }
  }
  return batch;
}

ReplicationApplier::ReplicationApplier(StorageEngine* engine, std::string dir,
                                       Env* env)
    : engine_(engine),
      dir_(std::move(dir)),
      env_(env != nullptr ? env : Env::Default()) {}

std::string ReplicationApplier::position_path() const {
  return dir_ + "/" + kPositionFileName;
}

Status ReplicationApplier::Apply(std::string_view record) {
  return engine_->ApplyReplicated(record);
}

Result<WalPosition> ReplicationApplier::LoadPosition() {
  Result<std::string> data = env_->ReadFileToString(position_path());
  if (!data.ok()) {
    if (data.status().IsNotFound()) {
      return WalPosition{};  // Fresh follower: bootstrap needed.
    }
    return data.status().WithContext("reading replication position");
  }
  if (data->size() != kPositionFileBytes) {
    // A torn sidecar is recoverable by re-bootstrap; treat like absent.
    return WalPosition{};
  }
  WalPosition pos;
  pos.wal_number = DecodeFixed64(data->data());
  pos.offset = DecodeFixed64(data->data() + 8);
  return pos;
}

Status ReplicationApplier::CommitPosition(WalPosition pos) {
  std::string data;
  data.reserve(kPositionFileBytes);
  PutFixed64(&data, pos.wal_number);
  PutFixed64(&data, pos.offset);
  return env_->WriteStringToFileSync(position_path(), data);
}

}  // namespace authidx::storage
