#ifndef AUTHIDX_STORAGE_WRITE_BATCH_H_
#define AUTHIDX_STORAGE_WRITE_BATCH_H_

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>

#include "authidx/common/status.h"

namespace authidx::storage {

/// A group of Put/Delete operations applied atomically: the whole batch
/// is one WAL record, so recovery either replays all of it or none
/// (torn-tail discard). Bulk ingest uses this to amortize WAL framing
/// and syncs.
class WriteBatch {
 public:
  WriteBatch() = default;

  void Put(std::string_view key, std::string_view value);
  void Delete(std::string_view key);
  void Clear();

  /// Number of operations.
  uint32_t count() const { return count_; }
  bool empty() const { return count_ == 0; }

  /// Serialized operations (op byte + length-prefixed fields, repeated).
  const std::string& rep() const { return rep_; }

  /// Approximate in-memory/WAL footprint.
  size_t ByteSize() const { return rep_.size(); }

  /// Decodes `rep` (as produced by this class), invoking the callbacks
  /// per operation. Returns Corruption on malformed input.
  static Status Iterate(
      std::string_view rep,
      const std::function<void(std::string_view, std::string_view)>& on_put,
      const std::function<void(std::string_view)>& on_delete);

 private:
  std::string rep_;
  uint32_t count_ = 0;
};

}  // namespace authidx::storage

#endif  // AUTHIDX_STORAGE_WRITE_BATCH_H_
