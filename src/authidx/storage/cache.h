#ifndef AUTHIDX_STORAGE_CACHE_H_
#define AUTHIDX_STORAGE_CACHE_H_

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <unordered_map>

#include "authidx/common/mutex.h"
#include "authidx/common/thread_annotations.h"
#include "authidx/obs/metrics.h"
#include "authidx/storage/block.h"

namespace authidx::storage {

/// Cache key for a decoded block: owning file number + block offset,
/// with the shard/bucket hash computed exactly once at construction so
/// the lookup hot path never hashes (or allocates) per operation.
struct BlockCacheKey {
  uint64_t file_number = 0;
  uint64_t offset = 0;
  uint64_t hash = 0;

  friend bool operator==(const BlockCacheKey& a, const BlockCacheKey& b) {
    return a.file_number == b.file_number && a.offset == b.offset;
  }
};

/// LRU cache of decoded blocks, shared by a store's table readers so hot
/// data blocks are parsed once. Capacity is in block bytes; eviction is
/// strict LRU within each shard. Entries are shared_ptr so an evicted
/// block stays alive while an iterator still pins it.
///
/// Thread-safe: the cache is split into `kNumShards` independently
/// mutexed LRU shards selected by the key's precomputed hash, so
/// concurrent readers on different shards never contend. Aggregate
/// counters (hits/misses/evictions/bytes) are lock-free atomics.
class BlockCache {
 public:
  /// Independently locked LRU shards; the shard index comes from the top
  /// bits of the key hash (the bucket index inside a shard's map uses
  /// the low bits, keeping the two selections uncorrelated).
  static constexpr size_t kNumShards = 16;

  /// `capacity_bytes` of zero disables caching (every Get misses).
  explicit BlockCache(size_t capacity_bytes);

  BlockCache(const BlockCache&) = delete;
  BlockCache& operator=(const BlockCache&) = delete;

  /// Builds a key, hashing (file_number, offset) once.
  static BlockCacheKey MakeKey(uint64_t file_number, uint64_t offset);

  /// The shard a key maps to (exposed for tests that need shard-local
  /// LRU behaviour).
  static size_t ShardIndex(const BlockCacheKey& key) {
    return (key.hash >> 60) & (kNumShards - 1);
  }

  /// Returns the cached block or nullptr, updating recency.
  std::shared_ptr<Block> Get(const BlockCacheKey& key);

  /// Inserts (replacing any previous entry) and evicts LRU entries until
  /// the shard is within its capacity share.
  void Insert(const BlockCacheKey& key, std::shared_ptr<Block> block);

  /// Drops every cached block for `file_number` (called when a table
  /// file is deleted by compaction).
  void EraseFile(uint64_t file_number);

  /// Mirrors cache activity into registry instruments (all owned by the
  /// caller's MetricsRegistry; any pointer may be null). Not thread-safe
  /// against concurrent cache use: bind during setup. The internal
  /// counters below keep working either way.
  void BindMetrics(obs::Counter* hits, obs::Counter* misses,
                   obs::Counter* evictions, obs::Gauge* bytes);

  size_t size_bytes() const {
    return size_bytes_.load(std::memory_order_relaxed);
  }
  size_t entry_count() const {
    return entry_count_.load(std::memory_order_relaxed);
  }
  uint64_t hits() const { return hits_.load(std::memory_order_relaxed); }
  uint64_t misses() const { return misses_.load(std::memory_order_relaxed); }
  uint64_t evictions() const {
    return evictions_.load(std::memory_order_relaxed);
  }

 private:
  struct Entry {
    BlockCacheKey key;
    std::shared_ptr<Block> block;
    size_t charge;
  };

  struct KeyHasher {
    size_t operator()(const BlockCacheKey& key) const {
      return static_cast<size_t>(key.hash);  // Precomputed, never re-mixed.
    }
  };

  struct Shard {
    Mutex mu;
    std::list<Entry> lru AUTHIDX_GUARDED_BY(mu);  // Front = most recent.
    std::unordered_map<BlockCacheKey, std::list<Entry>::iterator, KeyHasher>
        entries AUTHIDX_GUARDED_BY(mu);
    size_t size_bytes AUTHIDX_GUARDED_BY(mu) = 0;
  };

  // Evicts from `shard` until it fits its capacity share.
  void EvictShardIfNeeded(Shard& shard) AUTHIDX_REQUIRES(shard.mu);
  void SyncBytesGauge();

  size_t capacity_bytes_;
  size_t shard_capacity_bytes_;
  std::atomic<size_t> size_bytes_{0};
  std::atomic<size_t> entry_count_{0};
  std::atomic<uint64_t> hits_{0};
  std::atomic<uint64_t> misses_{0};
  std::atomic<uint64_t> evictions_{0};
  obs::Counter* metric_hits_ = nullptr;       // Not owned; may be null.
  obs::Counter* metric_misses_ = nullptr;     // Not owned; may be null.
  obs::Counter* metric_evictions_ = nullptr;  // Not owned; may be null.
  obs::Gauge* metric_bytes_ = nullptr;        // Not owned; may be null.
  Shard shards_[kNumShards];
};

}  // namespace authidx::storage

#endif  // AUTHIDX_STORAGE_CACHE_H_
