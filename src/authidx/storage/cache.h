#ifndef AUTHIDX_STORAGE_CACHE_H_
#define AUTHIDX_STORAGE_CACHE_H_

#include <cstdint>
#include <list>
#include <memory>
#include <string>
#include <unordered_map>

#include "authidx/obs/metrics.h"
#include "authidx/storage/block.h"

namespace authidx::storage {

/// LRU cache of decoded blocks, shared by a store's table readers so hot
/// data blocks are parsed once. Capacity is in block bytes; eviction is
/// strict LRU. Entries are shared_ptr so an evicted block stays alive
/// while an iterator still pins it. Not thread-safe (single-writer
/// engine).
class BlockCache {
 public:
  /// `capacity_bytes` of zero disables caching (every Get misses).
  explicit BlockCache(size_t capacity_bytes)
      : capacity_bytes_(capacity_bytes) {}

  BlockCache(const BlockCache&) = delete;
  BlockCache& operator=(const BlockCache&) = delete;

  /// Cache key for a block: owning file number + block offset.
  static std::string MakeKey(uint64_t file_number, uint64_t offset);

  /// Returns the cached block or nullptr, updating recency.
  std::shared_ptr<Block> Get(const std::string& key);

  /// Inserts (replacing any previous entry) and evicts LRU entries until
  /// within capacity.
  void Insert(const std::string& key, std::shared_ptr<Block> block);

  /// Drops every cached block for `file_number` (called when a table
  /// file is deleted by compaction).
  void EraseFile(uint64_t file_number);

  /// Mirrors cache activity into registry instruments (all owned by the
  /// caller's MetricsRegistry; any pointer may be null). The internal
  /// counters below keep working either way.
  void BindMetrics(obs::Counter* hits, obs::Counter* misses,
                   obs::Counter* evictions, obs::Gauge* bytes);

  size_t size_bytes() const { return size_bytes_; }
  size_t entry_count() const { return entries_.size(); }
  uint64_t hits() const { return hits_; }
  uint64_t misses() const { return misses_; }
  uint64_t evictions() const { return evictions_; }

 private:
  struct Entry {
    std::string key;
    std::shared_ptr<Block> block;
    size_t charge;
  };

  void EvictIfNeeded();
  void SyncBytesGauge();

  size_t capacity_bytes_;
  size_t size_bytes_ = 0;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
  uint64_t evictions_ = 0;
  obs::Counter* metric_hits_ = nullptr;       // Not owned; may be null.
  obs::Counter* metric_misses_ = nullptr;     // Not owned; may be null.
  obs::Counter* metric_evictions_ = nullptr;  // Not owned; may be null.
  obs::Gauge* metric_bytes_ = nullptr;        // Not owned; may be null.
  std::list<Entry> lru_;  // Front = most recent.
  std::unordered_map<std::string, std::list<Entry>::iterator> entries_;
};

}  // namespace authidx::storage

#endif  // AUTHIDX_STORAGE_CACHE_H_
