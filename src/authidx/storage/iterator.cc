#include "authidx/storage/iterator.h"

#include <algorithm>

namespace authidx::storage {
namespace {

class MergingIterator final : public Iterator {
 public:
  explicit MergingIterator(std::vector<std::unique_ptr<Iterator>> children)
      : children_(std::move(children)) {}

  bool Valid() const override { return current_ != nullptr; }

  void SeekToFirst() override {
    for (auto& child : children_) {
      child->SeekToFirst();
    }
    FindSmallest();
  }

  void Seek(std::string_view target) override {
    for (auto& child : children_) {
      child->Seek(target);
    }
    FindSmallest();
  }

  void Next() override {
    // Advance every child positioned at the current key (this both moves
    // the winner forward and discards shadowed duplicates in older
    // children), then re-select.
    std::string current_key(key());
    for (auto& child : children_) {
      if (child->Valid() && child->key() == current_key) {
        child->Next();
      }
    }
    FindSmallest();
  }

  std::string_view key() const override { return current_->key(); }
  std::string_view value() const override { return current_->value(); }

  Status status() const override {
    for (const auto& child : children_) {
      Status s = child->status();
      if (!s.ok()) {
        return s;
      }
    }
    return Status::OK();
  }

 private:
  void FindSmallest() {
    current_ = nullptr;
    for (auto& child : children_) {
      if (!child->Valid()) {
        continue;
      }
      if (current_ == nullptr || child->key() < current_->key()) {
        current_ = child.get();
      }
      // Equal keys: the earlier (newer) child stays the winner.
    }
  }

  std::vector<std::unique_ptr<Iterator>> children_;
  Iterator* current_ = nullptr;
};

class ErrorIterator final : public Iterator {
 public:
  explicit ErrorIterator(Status status) : status_(std::move(status)) {}
  bool Valid() const override { return false; }
  void SeekToFirst() override {}
  void Seek(std::string_view) override {}
  void Next() override {}
  std::string_view key() const override { return {}; }
  std::string_view value() const override { return {}; }
  Status status() const override { return status_; }

 private:
  Status status_;
};

}  // namespace

std::unique_ptr<Iterator> NewMergingIterator(
    std::vector<std::unique_ptr<Iterator>> children) {
  return std::make_unique<MergingIterator>(std::move(children));
}

std::unique_ptr<Iterator> NewErrorIterator(Status status) {
  return std::make_unique<ErrorIterator>(std::move(status));
}

}  // namespace authidx::storage
