#include "authidx/storage/memtable.h"

#include <cstring>

namespace authidx::storage {

namespace {
constexpr char kTagPut = 'P';
constexpr char kTagDelete = 'D';
}  // namespace

struct MemTable::Node {
  std::string_view key;
  std::string_view value;  // Tagged (1 byte tag + payload).
  int height;
  // Flexible next array, allocated alongside the node in the arena.
  Node* next[1];

  Node* Next(int level) const { return next[level]; }
  void SetNext(int level, Node* node) { next[level] = node; }
};

MemTable::MemTable() : rng_(0x6175746878ULL) {
  // Uncontended by definition (no other thread can see a half-built
  // table), but taking the lock keeps the GUARDED_BY contract uniform
  // for the analysis at negligible one-time cost.
  WriterMutexLock lock(mu_);
  head_ = NewNode("", "", kMaxHeight);
  for (int i = 0; i < kMaxHeight; ++i) {
    head_->SetNext(i, nullptr);
  }
}

MemTable::Node* MemTable::NewNode(std::string_view key,
                                  std::string_view tagged_value, int height) {
  size_t bytes = sizeof(Node) + sizeof(Node*) * (static_cast<size_t>(height) - 1);
  char* mem = arena_.AllocateAligned(bytes);
  Node* node = reinterpret_cast<Node*>(mem);
  node->key = arena_.CopyString(key);
  node->value = arena_.CopyString(tagged_value);
  node->height = height;
  return node;
}

int MemTable::RandomHeight() {
  // Height h with probability 1/4^(h-1), capped.
  int height = 1;
  while (height < kMaxHeight && rng_.OneIn(4)) {
    ++height;
  }
  return height;
}

MemTable::Node* MemTable::FindGreaterOrEqual(std::string_view key,
                                             Node** prev) const {
  Node* node = head_;
  int level = height_ - 1;
  while (true) {
    Node* next = node->Next(level);
    if (next != nullptr && next->key < key) {
      node = next;
    } else {
      if (prev != nullptr) {
        prev[level] = node;
      }
      if (level == 0) {
        return next;
      }
      --level;
    }
  }
}

void MemTable::Upsert(std::string_view key, std::string_view tagged_value) {
  Node* prev[kMaxHeight];
  for (int i = height_; i < kMaxHeight; ++i) {
    prev[i] = head_;
  }
  Node* node = FindGreaterOrEqual(key, prev);
  if (node != nullptr && node->key == key) {
    node->value = arena_.CopyString(tagged_value);
    return;
  }
  int height = RandomHeight();
  if (height > height_) {
    height_ = height;
  }
  Node* fresh = NewNode(key, tagged_value, height);
  for (int i = 0; i < height; ++i) {
    fresh->SetNext(i, prev[i]->Next(i));
    prev[i]->SetNext(i, fresh);
  }
  ++count_;
}

void MemTable::Put(std::string_view key, std::string_view value) {
  WriterMutexLock lock(mu_);
  Upsert(key, TagPut(value));
}

void MemTable::Delete(std::string_view key) {
  WriterMutexLock lock(mu_);
  Upsert(key, TagTombstone());
}

MemTable::GetResult MemTable::Get(std::string_view key,
                                  std::string* value) const {
  ReaderMutexLock lock(mu_);
  Node* node = FindGreaterOrEqual(key, nullptr);
  if (node == nullptr || node->key != key) {
    return GetResult::kNotFound;
  }
  if (IsTombstoneValue(node->value)) {
    return GetResult::kDeleted;
  }
  value->assign(StripTag(node->value));
  return GetResult::kFound;
}

std::string_view MemTable::StripTag(std::string_view tagged) {
  return tagged.empty() ? tagged : tagged.substr(1);
}

bool MemTable::IsTombstoneValue(std::string_view tagged) {
  return !tagged.empty() && tagged.front() == kTagDelete;
}

std::string MemTable::TagPut(std::string_view value) {
  std::string out;
  out.reserve(value.size() + 1);
  out.push_back(kTagPut);
  out.append(value);
  return out;
}

std::string MemTable::TagTombstone() { return std::string(1, kTagDelete); }

// Each operation takes the table's lock in shared mode: node links and
// value views may be written concurrently by Upsert (exclusive), but a
// node, its key, and any value bytes ever published stay valid for the
// memtable's lifetime (arena memory is never reclaimed), so a view read
// under the lock can be used after the lock is released.
class MemTable::Iter final : public Iterator {
 public:
  explicit Iter(const MemTable* table) : table_(table) {}

  bool Valid() const override { return node_ != nullptr; }
  void SeekToFirst() override {
    ReaderMutexLock lock(table_->mu_);
    node_ = table_->head_->Next(0);
  }
  void Seek(std::string_view target) override {
    ReaderMutexLock lock(table_->mu_);
    node_ = table_->FindGreaterOrEqual(target, nullptr);
  }
  void Next() override {
    ReaderMutexLock lock(table_->mu_);
    node_ = node_->Next(0);
  }
  std::string_view key() const override {
    ReaderMutexLock lock(table_->mu_);
    return node_->key;
  }
  std::string_view value() const override {
    ReaderMutexLock lock(table_->mu_);
    return node_->value;
  }
  Status status() const override { return Status::OK(); }

 private:
  const MemTable* table_;
  const Node* node_ = nullptr;
};

std::unique_ptr<Iterator> MemTable::NewIterator() const {
  return std::make_unique<Iter>(this);
}

}  // namespace authidx::storage
