#include "authidx/storage/write_batch.h"

#include "authidx/common/coding.h"

namespace authidx::storage {

namespace {
constexpr char kOpPut = 'P';
constexpr char kOpDelete = 'D';
}  // namespace

void WriteBatch::Put(std::string_view key, std::string_view value) {
  rep_.push_back(kOpPut);
  PutLengthPrefixed(&rep_, key);
  PutLengthPrefixed(&rep_, value);
  ++count_;
}

void WriteBatch::Delete(std::string_view key) {
  rep_.push_back(kOpDelete);
  PutLengthPrefixed(&rep_, key);
  ++count_;
}

void WriteBatch::Clear() {
  rep_.clear();
  count_ = 0;
}

Status WriteBatch::Iterate(
    std::string_view rep,
    const std::function<void(std::string_view, std::string_view)>& on_put,
    const std::function<void(std::string_view)>& on_delete) {
  while (!rep.empty()) {
    char op = rep.front();
    rep.remove_prefix(1);
    std::string_view key, value;
    AUTHIDX_RETURN_NOT_OK(GetLengthPrefixed(&rep, &key));
    switch (op) {
      case kOpPut:
        AUTHIDX_RETURN_NOT_OK(GetLengthPrefixed(&rep, &value));
        on_put(key, value);
        break;
      case kOpDelete:
        on_delete(key);
        break;
      default:
        return Status::Corruption("unknown batch op");
    }
  }
  return Status::OK();
}

}  // namespace authidx::storage
