#include "authidx/storage/wal.h"

#include "authidx/common/coding.h"
#include "authidx/common/crc32c.h"

namespace authidx::storage {

namespace {
constexpr size_t kHeaderSize = 8;  // crc (4) + length (4).
}  // namespace

Result<std::unique_ptr<WalWriter>> WalWriter::Open(Env* env,
                                                   const std::string& path) {
  AUTHIDX_ASSIGN_OR_RETURN(auto file, env->NewWritableFile(path));
  return std::unique_ptr<WalWriter>(new WalWriter(std::move(file)));
}

Status WalWriter::Append(std::string_view record) {
  std::string header;
  uint32_t crc = crc32c::Mask(crc32c::Value(record));
  PutFixed32(&header, crc);
  PutFixed32(&header, static_cast<uint32_t>(record.size()));
  AUTHIDX_RETURN_NOT_OK(file_->Append(header));
  AUTHIDX_RETURN_NOT_OK(file_->Append(record));
  bytes_written_ += kHeaderSize + record.size();
  return Status::OK();
}

Status WalWriter::Sync() { return file_->Sync(); }

Status WalWriter::Close() { return file_->Close(); }

Result<WalReplayStats> ReplayWal(
    Env* env, const std::string& path,
    const std::function<Status(std::string_view)>& sink) {
  AUTHIDX_ASSIGN_OR_RETURN(std::string data, env->ReadFileToString(path));
  WalReplayStats stats;
  std::string_view input = data;
  while (!input.empty()) {
    if (input.size() < kHeaderSize) {
      stats.tail_corruption = true;
      break;
    }
    uint32_t stored_crc = crc32c::Unmask(DecodeFixed32(input.data()));
    uint32_t length = DecodeFixed32(input.data() + 4);
    if (input.size() - kHeaderSize < length) {
      stats.tail_corruption = true;  // Truncated payload.
      break;
    }
    std::string_view payload = input.substr(kHeaderSize, length);
    if (crc32c::Value(payload) != stored_crc) {
      stats.tail_corruption = true;  // Bit rot or torn write.
      break;
    }
    AUTHIDX_RETURN_NOT_OK(sink(payload));
    ++stats.records;
    stats.bytes += kHeaderSize + length;
    input.remove_prefix(kHeaderSize + length);
  }
  return stats;
}

}  // namespace authidx::storage
