#include "authidx/storage/wal.h"

#include "authidx/common/coding.h"
#include "authidx/common/crc32c.h"

namespace authidx::storage {

WalParseOutcome ParseWalRecord(std::string_view input,
                               std::string_view* payload, size_t* consumed) {
  if (input.size() < kWalRecordHeaderBytes) return WalParseOutcome::kNeedMore;
  uint32_t stored_crc = crc32c::Unmask(DecodeFixed32(input.data()));
  uint32_t length = DecodeFixed32(input.data() + 4);
  if (input.size() - kWalRecordHeaderBytes < length) {
    return WalParseOutcome::kNeedMore;  // Truncated payload.
  }
  std::string_view body = input.substr(kWalRecordHeaderBytes, length);
  if (crc32c::Value(body) != stored_crc) {
    return WalParseOutcome::kCorrupt;  // Bit rot or torn write.
  }
  *payload = body;
  *consumed = kWalRecordHeaderBytes + length;
  return WalParseOutcome::kRecord;
}

Result<std::unique_ptr<WalWriter>> WalWriter::Open(Env* env,
                                                   const std::string& path) {
  AUTHIDX_ASSIGN_OR_RETURN(auto file, env->NewWritableFile(path));
  return std::unique_ptr<WalWriter>(new WalWriter(std::move(file)));
}

Status WalWriter::Append(std::string_view record) {
  std::string header;
  uint32_t crc = crc32c::Mask(crc32c::Value(record));
  PutFixed32(&header, crc);
  PutFixed32(&header, static_cast<uint32_t>(record.size()));
  AUTHIDX_RETURN_NOT_OK(file_->Append(header));
  AUTHIDX_RETURN_NOT_OK(file_->Append(record));
  bytes_written_ += kWalRecordHeaderBytes + record.size();
  return Status::OK();
}

Status WalWriter::Flush() { return file_->Flush(); }

Status WalWriter::Sync() { return file_->Sync(); }

Status WalWriter::Close() { return file_->Close(); }

Result<WalReplayStats> ReplayWal(
    Env* env, const std::string& path,
    const std::function<Status(std::string_view)>& sink) {
  AUTHIDX_ASSIGN_OR_RETURN(std::string data, env->ReadFileToString(path));
  WalReplayStats stats;
  std::string_view input = data;
  while (!input.empty()) {
    std::string_view payload;
    size_t consumed = 0;
    WalParseOutcome outcome = ParseWalRecord(input, &payload, &consumed);
    if (outcome != WalParseOutcome::kRecord) {
      // A short or damaged record at any position stops the replay; the
      // stats tell callers how much was recovered before the damage.
      stats.tail_corruption = true;
      break;
    }
    AUTHIDX_RETURN_NOT_OK(sink(payload));
    ++stats.records;
    stats.bytes += consumed;
    input.remove_prefix(consumed);
  }
  return stats;
}

}  // namespace authidx::storage
