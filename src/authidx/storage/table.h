#ifndef AUTHIDX_STORAGE_TABLE_H_
#define AUTHIDX_STORAGE_TABLE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <string_view>

#include "authidx/common/env.h"
#include "authidx/index/bloom.h"
#include "authidx/obs/metrics.h"
#include "authidx/storage/block.h"
#include "authidx/storage/cache.h"
#include "authidx/storage/iterator.h"

namespace authidx::storage {

/// Location of a block inside a table file.
struct BlockHandle {
  uint64_t offset = 0;
  uint64_t size = 0;  // Payload size, excluding the type/crc trailer.

  void EncodeTo(std::string* dst) const;
  static Result<BlockHandle> DecodeFrom(std::string_view* input);
};

/// Immutable sorted-run file ("SSTable"):
///
///   [data block]*  [bloom filter block]  [index block]  [footer]
///
/// Every block is stored as payload | type (1B) | masked crc32c (4B),
/// where type 'R' is raw and 'L' is LzCompress'd (chosen per block by
/// whichever is smaller when compression is enabled). The index block
/// maps each data block's last key to its handle. The fixed-size footer
/// holds the filter and index handles plus a magic number.
class TableBuilder {
 public:
  struct Options {
    size_t block_bytes = 4096;
    int restart_interval = 16;
    int bloom_bits_per_key = 10;
    /// Compress data/index/filter blocks when it helps.
    bool compress = false;
  };

  TableBuilder(Options options, WritableFile* file);
  ~TableBuilder();

  /// Adds a key strictly greater than all previous keys.
  Status Add(std::string_view key, std::string_view value);

  /// Flushes everything and writes filter/index/footer. The file is NOT
  /// synced or closed; the caller owns that.
  Status Finish();

  uint64_t entry_count() const { return entry_count_; }
  uint64_t file_bytes() const { return offset_; }
  /// Blocks that were stored compressed (diagnostics).
  uint64_t compressed_blocks() const { return compressed_blocks_; }

 private:
  Status FlushDataBlock();
  Status WriteBlock(std::string_view contents, BlockHandle* handle);

  Options options_;
  WritableFile* file_;
  BlockBuilder data_block_;
  BlockBuilder index_block_;
  std::vector<std::string> keys_for_filter_;
  std::string last_key_;
  std::string pending_index_key_;
  BlockHandle pending_handle_;
  bool pending_index_entry_ = false;
  uint64_t offset_ = 0;
  uint64_t entry_count_ = 0;
  uint64_t compressed_blocks_ = 0;
  bool finished_ = false;
};

/// Read side of a table file.
class TableReader {
 public:
  /// Opens and validates footer, index and filter. When `cache` is
  /// non-null, data blocks are served through it, keyed by
  /// (`file_number`, offset).
  static Result<std::unique_ptr<TableReader>> Open(
      Env* env, const std::string& path, BlockCache* cache = nullptr,
      uint64_t file_number = 0);

  /// Point lookup. Returns nullopt when definitely absent. The bloom
  /// filter short-circuits most absent keys without touching data blocks.
  /// `verify_checksums` forces every block this lookup touches to be
  /// re-read from disk and CRC-verified (the decoded-block cache is
  /// bypassed: a cache hit would skip exactly the check requested).
  Result<std::optional<std::string>> Get(std::string_view key,
                                         bool verify_checksums = false) const;

  /// Ordered iterator over the whole table. The reader must outlive it.
  /// `fill_cache` = false (bulk scans, compaction) still reads through
  /// the cache but does not populate it, so scans cannot evict the hot
  /// point-lookup working set. `verify_checksums` re-reads and
  /// CRC-verifies every block from disk, bypassing the cache.
  std::unique_ptr<Iterator> NewIterator(bool fill_cache = true,
                                        bool verify_checksums = false) const;

  uint64_t file_bytes() const { return file_size_; }

  /// Bloom filter hit statistics (diagnostics): lookups answered
  /// "definitely absent" without reading a data block.
  uint64_t bloom_negative_count() const {
    return bloom_negatives_.load(std::memory_order_relaxed);
  }

  /// Mirrors Bloom filter activity into registry counters (owned by the
  /// caller's MetricsRegistry; either pointer may be null): `checks`
  /// counts every filter consultation, `negatives` the definite-absent
  /// short-circuits.
  void BindBloomMetrics(obs::Counter* checks, obs::Counter* negatives);

  /// Mirrors block-integrity failures into a registry counter (owned by
  /// the caller; may be null): incremented once per block whose CRC,
  /// framing, or decompression check fails.
  void BindCorruptionMetric(obs::Counter* corrupt_blocks);

 private:
  class Iter;

  TableReader() = default;

  /// Reads, verifies and decompresses a block payload.
  Result<std::string> ReadBlockContents(const BlockHandle& handle) const;
  /// ReadBlockContents + parse, via the cache when configured.
  /// `verify_checksums` bypasses the cache in both directions so the
  /// on-disk bytes are re-checked.
  Result<std::shared_ptr<Block>> ReadBlock(const BlockHandle& handle,
                                           bool fill_cache = true,
                                           bool verify_checksums = false)
      const;

  std::unique_ptr<RandomAccessFile> file_;
  uint64_t file_size_ = 0;
  std::shared_ptr<Block> index_block_;
  std::optional<BloomFilter> filter_;
  BlockCache* cache_ = nullptr;  // Not owned; may be null.
  uint64_t file_number_ = 0;
  mutable std::atomic<uint64_t> bloom_negatives_{0};
  obs::Counter* metric_bloom_checks_ = nullptr;     // Not owned; may be null.
  obs::Counter* metric_bloom_negatives_ = nullptr;  // Not owned; may be null.
  obs::Counter* metric_corrupt_blocks_ = nullptr;   // Not owned; may be null.
};

}  // namespace authidx::storage

#endif  // AUTHIDX_STORAGE_TABLE_H_
