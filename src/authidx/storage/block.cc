#include "authidx/storage/block.h"

#include <algorithm>

#include "authidx/common/coding.h"
#include "authidx/common/status.h"

namespace authidx::storage {

BlockBuilder::BlockBuilder(int restart_interval)
    : restart_interval_(restart_interval < 1 ? 1 : restart_interval) {
  restarts_.push_back(0);
}

void BlockBuilder::Add(std::string_view key, std::string_view value) {
  AUTHIDX_INTERNAL_CHECK(!finished_);
  AUTHIDX_INTERNAL_CHECK(counter_ == 0 || key >= std::string_view(last_key_));
  size_t shared = 0;
  if (counter_ < restart_interval_) {
    size_t max_shared = std::min(key.size(), last_key_.size());
    while (shared < max_shared && key[shared] == last_key_[shared]) {
      ++shared;
    }
  } else {
    restarts_.push_back(static_cast<uint32_t>(buffer_.size()));
    counter_ = 0;
  }
  PutVarint32(&buffer_, static_cast<uint32_t>(shared));
  PutVarint32(&buffer_, static_cast<uint32_t>(key.size() - shared));
  PutVarint32(&buffer_, static_cast<uint32_t>(value.size()));
  buffer_.append(key.substr(shared));
  buffer_.append(value);
  last_key_.assign(key);
  ++counter_;
}

std::string_view BlockBuilder::Finish() {
  for (uint32_t restart : restarts_) {
    PutFixed32(&buffer_, restart);
  }
  PutFixed32(&buffer_, static_cast<uint32_t>(restarts_.size()));
  finished_ = true;
  return buffer_;
}

void BlockBuilder::Reset() {
  buffer_.clear();
  restarts_.clear();
  restarts_.push_back(0);
  counter_ = 0;
  last_key_.clear();
  finished_ = false;
}

size_t BlockBuilder::CurrentSizeEstimate() const {
  return buffer_.size() + restarts_.size() * 4 + 4;
}

Result<std::unique_ptr<Block>> Block::Parse(std::string contents) {
  if (contents.size() < 4) {
    return Status::Corruption("block too small for trailer");
  }
  uint32_t num_restarts = DecodeFixed32(contents.data() + contents.size() - 4);
  size_t trailer = 4 + static_cast<size_t>(num_restarts) * 4;
  if (num_restarts == 0 || trailer > contents.size()) {
    return Status::Corruption("block restart array malformed");
  }
  size_t restarts_offset = contents.size() - trailer;
  return std::unique_ptr<Block>(
      new Block(std::move(contents), num_restarts, restarts_offset));
}

class Block::Iter final : public Iterator {
 public:
  explicit Iter(const Block* block) : block_(block) {}

  bool Valid() const override { return valid_; }

  void SeekToFirst() override {
    offset_ = 0;
    key_.clear();
    ParseCurrent();
  }

  void Seek(std::string_view target) override {
    // Binary search restart points for the last restart whose key is
    // <= target, then scan forward.
    uint32_t lo = 0;
    uint32_t hi = block_->num_restarts_;  // Exclusive.
    while (hi - lo > 1) {
      uint32_t mid = lo + (hi - lo) / 2;
      std::string_view key_at_mid;
      if (!KeyAtRestart(mid, &key_at_mid)) {
        valid_ = false;
        return;
      }
      if (key_at_mid <= target) {
        lo = mid;
      } else {
        hi = mid;
      }
    }
    offset_ = RestartOffset(lo);
    key_.clear();
    ParseCurrent();
    while (valid_ && std::string_view(key_) < target) {
      Next();
    }
  }

  void Next() override {
    offset_ = next_offset_;
    ParseCurrent();
  }

  std::string_view key() const override { return key_; }
  std::string_view value() const override { return value_; }
  Status status() const override { return status_; }

 private:
  uint32_t RestartOffset(uint32_t i) const {
    return DecodeFixed32(block_->contents_.data() +
                         block_->restarts_offset_ + 4 * i);
  }

  // Decodes the full (restart) key at restart index `i`.
  bool KeyAtRestart(uint32_t i, std::string_view* key) {
    size_t off = RestartOffset(i);
    // A corrupted restart array can hold any 32-bit offset; substr on an
    // out-of-range offset throws. Clamp reads to the entry region.
    if (off >= block_->restarts_offset_) {
      status_ = Status::Corruption("restart offset out of range");
      return false;
    }
    std::string_view input = std::string_view(block_->contents_)
                                 .substr(off, block_->restarts_offset_ - off);
    uint32_t shared = 0, non_shared = 0, value_len = 0;
    if (!GetVarint32(&input, &shared).ok() ||
        !GetVarint32(&input, &non_shared).ok() ||
        !GetVarint32(&input, &value_len).ok() || shared != 0 ||
        input.size() < non_shared) {
      status_ = Status::Corruption("bad restart entry");
      return false;
    }
    *key = input.substr(0, non_shared);
    return true;
  }

  void ParseCurrent() {
    if (offset_ >= block_->restarts_offset_) {
      valid_ = false;
      return;
    }
    std::string_view input =
        std::string_view(block_->contents_)
            .substr(offset_, block_->restarts_offset_ - offset_);
    size_t before = input.size();
    uint32_t shared = 0, non_shared = 0, value_len = 0;
    if (!GetVarint32(&input, &shared).ok() ||
        !GetVarint32(&input, &non_shared).ok() ||
        !GetVarint32(&input, &value_len).ok() ||
        input.size() < static_cast<size_t>(non_shared) + value_len ||
        shared > key_.size()) {
      status_ = Status::Corruption("bad block entry");
      valid_ = false;
      return;
    }
    key_.resize(shared);
    key_.append(input.substr(0, non_shared));
    value_ = input.substr(non_shared, value_len);
    size_t header = before - input.size();
    next_offset_ = offset_ + header + non_shared + value_len;
    valid_ = true;
  }

  const Block* block_;
  size_t offset_ = 0;
  size_t next_offset_ = 0;
  std::string key_;
  std::string_view value_;
  bool valid_ = false;
  Status status_;
};

std::unique_ptr<Iterator> Block::NewIterator() const {
  return std::make_unique<Iter>(this);
}

}  // namespace authidx::storage
