#ifndef AUTHIDX_STORAGE_MANIFEST_H_
#define AUTHIDX_STORAGE_MANIFEST_H_

#include <cstdint>
#include <string>
#include <vector>

#include "authidx/common/env.h"
#include "authidx/common/result.h"

namespace authidx::storage {

/// Metadata for one table file.
struct FileMeta {
  uint64_t file_number = 0;
  int level = 0;
  uint64_t entry_count = 0;
  std::string smallest_key;
  std::string largest_key;

  friend bool operator==(const FileMeta&, const FileMeta&) = default;
};

/// Durable snapshot of the store's file layout. Rewritten atomically
/// (write-temp + fsync + rename) after every flush/compaction, which
/// keeps recovery trivial: the manifest on disk always describes a
/// consistent set of immutable table files.
struct Manifest {
  uint64_t next_file_number = 1;
  uint64_t wal_number = 0;
  /// WAL backing the sealed (immutable) memtable while its flush is in
  /// flight; 0 when no immutable memtable exists. Recovery replays this
  /// WAL before `wal_number` so the handoff survives a crash between
  /// the seal and the flush commit.
  uint64_t imm_wal_number = 0;
  std::vector<FileMeta> files;

  /// Serializes to the line-oriented text format (versioned, crc'd).
  std::string Encode() const;

  /// Parses Encode() output.
  static Result<Manifest> Decode(std::string_view data);

  /// Loads from `<dir>/MANIFEST`; NotFound if absent.
  static Result<Manifest> Load(Env* env, const std::string& dir);

  /// Atomically persists to `<dir>/MANIFEST`.
  Status Save(Env* env, const std::string& dir) const;

  /// Files in `level`, sorted newest-first (higher file number first)
  /// for level 0 and by smallest key for level 1+.
  std::vector<FileMeta> LevelFiles(int level) const;
};

/// Filename helpers.
std::string TableFileName(const std::string& dir, uint64_t number);
std::string WalFileName(const std::string& dir, uint64_t number);
std::string ManifestFileName(const std::string& dir);

}  // namespace authidx::storage

#endif  // AUTHIDX_STORAGE_MANIFEST_H_
