// authidx_replica — a WAL-shipping read replica: follows a primary
// authidx_server, applies its replication stream into a local store,
// and serves read-only RPC traffic (docs/REPLICATION.md is the
// operator guide).
//
//   authidx_replica --db DIR --primary HOST:PORT [--port N]
//                   [--http-port N] [--stale-after-ms N]
//                   [--io-timeout-ms N] [--workers N] [--reseed]
//                   [--log-level L] [--log-file PATH]
//
// The RPC port answers QUERY/STATS/PING like the primary; ADD and
// REPL_SUBSCRIBE get NOT_PRIMARY. When --http-port is given, /healthz
// returns 503 while the replica is stale (no frame from the primary
// within --stale-after-ms) or the primary reported itself degraded,
// so a load balancer drains reads from a replica that is falling
// behind. /metrics and /varz expose the authidx_repl_* instruments.
//
// --reseed wipes the local store before starting, forcing a fresh
// snapshot bootstrap — the recovery path for a replica whose
// replication cursor the primary can no longer serve.
//
// Exit status: 0 on clean shutdown, 1 on usage errors, 2 on runtime
// failures.

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>

#include "authidx/common/env.h"
#include "authidx/common/strings.h"
#include "authidx/core/author_index.h"
#include "authidx/core/stats.h"
#include "authidx/format/metrics_text.h"
#include "authidx/net/replica.h"
#include "authidx/net/server.h"
#include "authidx/obs/http_server.h"
#include "authidx/obs/log.h"
#include "authidx/obs/metrics.h"

namespace {

using namespace authidx;

int Usage() {
  std::fprintf(
      stderr,
      "usage: authidx_replica --db DIR --primary HOST:PORT [flags]\n"
      "  --port N            read-only RPC port (default 7071; 0 = "
      "ephemeral)\n"
      "  --http-port N       serve HTTP /metrics /healthz /varz\n"
      "  --stale-after-ms N  /healthz turns 503 after N ms without a "
      "frame from the primary (default 10000)\n"
      "  --io-timeout-ms N   socket timeout toward the primary "
      "(default 5000)\n"
      "  --workers N         request worker threads (default 2)\n"
      "  --reseed            wipe the local store first and bootstrap "
      "from a fresh snapshot\n"
      "  --log-level L       debug|info|warn|error (default info)\n"
      "  --log-file PATH     also log to a rotating file\n");
  return 1;
}

int Fail(const Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 2;
}

struct Args {
  std::string db;
  std::string primary_host;
  int primary_port = -1;
  int port = 7071;
  int http_port = -1;  // -1 = no HTTP endpoint.
  int64_t stale_after_ms = 10000;
  int64_t io_timeout_ms = 5000;
  int workers = 2;
  bool reseed = false;
  std::string log_level;
  std::string log_file;
};

bool ParsePort(const char* text, int* out) {
  Result<int64_t> value = ParseInt64(text);
  if (!value.ok() || *value < 0 || *value > 65535) {
    return false;
  }
  *out = static_cast<int>(*value);
  return true;
}

bool ParseHostPort(const std::string& text, std::string* host, int* port) {
  size_t colon = text.rfind(':');
  if (colon == std::string::npos || colon == 0) {
    return false;
  }
  *host = text.substr(0, colon);
  return ParsePort(text.c_str() + colon + 1, port) && *port > 0;
}

bool ParseArgs(int argc, char** argv, Args* args) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    auto parse_nonneg = [&](int64_t* out) {
      const char* text = next();
      if (text == nullptr) {
        return false;
      }
      Result<int64_t> value = ParseInt64(text);
      if (!value.ok() || *value < 0) {
        return false;
      }
      *out = *value;
      return true;
    };
    if (arg == "--db") {
      const char* value = next();
      if (value == nullptr) {
        return false;
      }
      args->db = value;
    } else if (arg == "--primary") {
      const char* value = next();
      if (value == nullptr ||
          !ParseHostPort(value, &args->primary_host, &args->primary_port)) {
        return false;
      }
    } else if (arg == "--port") {
      const char* value = next();
      if (value == nullptr || !ParsePort(value, &args->port)) {
        return false;
      }
    } else if (arg == "--http-port") {
      const char* value = next();
      if (value == nullptr || !ParsePort(value, &args->http_port)) {
        return false;
      }
    } else if (arg == "--stale-after-ms") {
      if (!parse_nonneg(&args->stale_after_ms) || args->stale_after_ms == 0) {
        return false;
      }
    } else if (arg == "--io-timeout-ms") {
      if (!parse_nonneg(&args->io_timeout_ms) || args->io_timeout_ms == 0) {
        return false;
      }
    } else if (arg == "--workers") {
      int64_t workers = 0;
      if (!parse_nonneg(&workers) || workers == 0 || workers > 1024) {
        return false;
      }
      args->workers = static_cast<int>(workers);
    } else if (arg == "--reseed") {
      args->reseed = true;
    } else if (arg == "--log-level") {
      const char* value = next();
      if (value == nullptr) {
        return false;
      }
      args->log_level = value;
    } else if (arg == "--log-file") {
      const char* value = next();
      if (value == nullptr) {
        return false;
      }
      args->log_file = value;
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
      return false;
    }
  }
  return !args->db.empty() && args->primary_port > 0;
}

// Removes every file in the replica's store directory so the next
// open recovers empty and the follower bootstraps from a snapshot.
Status WipeStore(const std::string& dir) {
  Env* env = Env::Default();
  Result<std::vector<std::string>> names = env->ListDir(dir);
  if (!names.ok()) {
    // A missing directory is already "wiped".
    return names.status().code() == StatusCode::kNotFound ? Status::OK()
                                                          : names.status();
  }
  for (const std::string& name : *names) {
    if (name == "." || name == "..") {
      continue;
    }
    if (Status s = env->RemoveFile(dir + "/" + name); !s.ok()) {
      return s;
    }
  }
  return Status::OK();
}

// Set by SIGINT/SIGTERM so the main loop can drain and exit.
std::atomic<bool> g_stop{false};

void HandleStopSignal(int) { g_stop.store(true, std::memory_order_relaxed); }

}  // namespace

int main(int argc, char** argv) {
  Args args;
  if (!ParseArgs(argc, argv, &args)) {
    return Usage();
  }

  obs::LogLevel level = obs::LogLevel::kInfo;
  if (!args.log_level.empty() &&
      !obs::ParseLogLevel(args.log_level, &level)) {
    std::fprintf(stderr, "unknown --log-level: %s\n",
                 args.log_level.c_str());
    return Usage();
  }
  obs::Logger logger(level);
  logger.AddSink(std::make_unique<obs::StderrSink>());
  if (!args.log_file.empty()) {
    Result<std::unique_ptr<obs::RotatingFileSink>> sink =
        obs::RotatingFileSink::Open(Env::Default(), args.log_file);
    if (!sink.ok()) {
      return Fail(sink.status());
    }
    logger.AddSink(std::move(sink).value());
  }

  if (args.reseed) {
    if (Status s = WipeStore(args.db); !s.ok()) {
      return Fail(s);
    }
    std::printf("reseed: wiped %s\n", args.db.c_str());
  }

  storage::EngineOptions engine_options;
  engine_options.logger = &logger;
  Result<std::unique_ptr<core::AuthorIndex>> catalog =
      core::AuthorIndex::OpenReplica(args.db, engine_options);
  if (!catalog.ok()) {
    return Fail(catalog.status());
  }

  net::ReplicaOptions replica_options;
  replica_options.primary_host = args.primary_host;
  replica_options.primary_port = args.primary_port;
  replica_options.io_timeout_ms = static_cast<int>(args.io_timeout_ms);
  replica_options.logger = &logger;
  net::ReplicationFollower follower(catalog->get(), args.db,
                                    replica_options);
  if (Status s = follower.Start(); !s.ok()) {
    return Fail(s);
  }

  net::ServerOptions options;
  options.port = args.port;
  options.num_workers = args.workers;
  options.metrics = (*catalog)->mutable_metrics();
  options.logger = &logger;
  net::Server server(catalog->get(), options);
  if (Status s = server.Start(); !s.ok()) {
    follower.Stop();
    return Fail(s);
  }

  obs::HttpServer http;
  if (args.http_port >= 0) {
    core::AuthorIndex* raw = catalog->get();
    net::ReplicationFollower* repl = &follower;
    uint64_t stale_after_ns =
        static_cast<uint64_t>(args.stale_after_ms) * 1000000u;
    uint64_t start_ns = obs::MonotonicNowNs();
    http.Route("/metrics", [raw] {
      obs::HttpResponse r;
      r.content_type = "text/plain; version=0.0.4; charset=utf-8";
      r.body = format::MetricsToPrometheusText(raw->GetMetricsSnapshot());
      return r;
    });
    http.Route("/healthz", [raw, repl, stale_after_ns] {
      obs::HttpResponse r;
      // Staleness gates reads: a replica that lost its primary keeps
      // serving (stale reads beat no reads for callers that opted in),
      // but the balancer is told to prefer fresher nodes.
      uint64_t silent_ns = repl->NsSinceLastContact();
      if (raw->StorageDegraded()) {
        r.status = 503;
        r.body =
            "degraded: " + raw->StorageBackgroundError().ToString() + "\n";
      } else if (silent_ns > stale_after_ns) {
        r.status = 503;
        r.body = silent_ns == UINT64_MAX
                     ? "stale: no contact with the primary yet\n"
                     : "stale: " + std::to_string(silent_ns / 1000000u) +
                           " ms since last frame from the primary\n";
      } else if (repl->primary_degraded()) {
        r.status = 503;
        r.body = "stale: primary reports degraded storage\n";
      } else {
        r.body = "ok\n";
      }
      return r;
    });
    http.Route("/varz", [raw, repl, start_ns] {
      obs::HttpResponse r;
      r.content_type = "application/json";
      storage::WalPosition applied = repl->applied_position();
      storage::WalPosition committed = repl->primary_committed();
      uint64_t silent_ns = repl->NsSinceLastContact();
      std::string body = "{\"role\":\"replica\"";
      body += ",\"uptime_ms\":" +
              std::to_string((obs::MonotonicNowNs() - start_ns) / 1000000u);
      body += ",\"replication\":{\"applied\":{\"wal\":" +
              std::to_string(applied.wal_number) +
              ",\"offset\":" + std::to_string(applied.offset) + "}";
      body += ",\"primary_committed\":{\"wal\":" +
              std::to_string(committed.wal_number) +
              ",\"offset\":" + std::to_string(committed.offset) + "}";
      body += ",\"ms_since_contact\":" +
              (silent_ns == UINT64_MAX
                   ? std::string("null")
                   : std::to_string(silent_ns / 1000000u));
      body += ",\"primary_degraded\":";
      body += repl->primary_degraded() ? "true" : "false";
      body += "}";
      body += ",\"stats\":" + core::ComputeStats(*raw).ToJson();
      body += "}";
      r.body = std::move(body);
      return r;
    });
    if (Status s = http.Start(args.http_port); !s.ok()) {
      server.Stop();
      follower.Stop();
      return Fail(s);
    }
  }

  std::printf("authidx_replica: rpc on 127.0.0.1:%d", server.port());
  if (args.http_port >= 0) {
    std::printf(", http on 127.0.0.1:%d", http.port());
  }
  std::printf(", following %s:%d (%zu entries); Ctrl-C stops\n",
              args.primary_host.c_str(), args.primary_port,
              (*catalog)->entry_count());
  std::fflush(stdout);

  std::signal(SIGINT, HandleStopSignal);
  std::signal(SIGTERM, HandleStopSignal);
  while (!g_stop.load(std::memory_order_relaxed)) {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }

  server.Stop();
  follower.Stop();
  if (args.http_port >= 0) {
    http.Stop();
  }
  std::printf("stopped at wal %llu offset %llu\n",
              static_cast<unsigned long long>(
                  follower.applied_position().wal_number),
              static_cast<unsigned long long>(
                  follower.applied_position().offset));
  return 0;
}
