// authidx_cli — command-line front end over a persistent catalog.
//
//   authidx_cli ingest  --db DIR FILE.tsv|FILE.bib   load entries
//   authidx_cli query   --db DIR 'QUERY'             structured search
//   authidx_cli typeset --db DIR [--kwic|--titles|--subjects]
//   authidx_cli export  --db DIR --format csv|json   dump the catalog
//   authidx_cli stats   --db DIR [--metrics]         corpus statistics
//   authidx_cli trace   --db DIR 'QUERY'             query with span tree
//   authidx_cli compact --db DIR                     storage maintenance
//
// Exit status: 0 on success, 1 on usage errors, 2 on runtime failures.

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "authidx/common/env.h"
#include "authidx/core/author_index.h"
#include "authidx/core/stats.h"
#include "authidx/format/export.h"
#include "authidx/format/kwic.h"
#include "authidx/format/metrics_text.h"
#include "authidx/format/subject_index.h"
#include "authidx/format/title_index.h"
#include "authidx/format/typeset.h"
#include "authidx/obs/trace.h"
#include "authidx/parse/bibtex.h"
#include "authidx/parse/tsv.h"
#include "authidx/query/planner.h"

namespace {

using namespace authidx;

int Usage() {
  std::fprintf(
      stderr,
      "usage: authidx_cli <command> --db DIR [args]\n"
      "  ingest  --db DIR FILE      load .tsv or .bib entries\n"
      "  query   --db DIR 'QUERY'   e.g. 'author:mc* coal year:1975..'\n"
      "  typeset --db DIR [--kwic|--titles|--subjects]\n"
      "                             print the author/KWIC/title/subject index\n"
      "  export  --db DIR --format csv|json\n"
      "  stats   --db DIR [--metrics]\n"
      "                             --metrics: Prometheus text exposition\n"
      "  trace   --db DIR 'QUERY'   run QUERY and print its span tree\n"
      "  compact --db DIR\n");
  return 1;
}

int Fail(const Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 2;
}

struct Args {
  std::string command;
  std::string db;
  std::string format = "csv";
  bool kwic = false;
  bool titles = false;
  bool subjects = false;
  bool metrics = false;
  std::vector<std::string> positional;
};

bool ParseArgs(int argc, char** argv, Args* args) {
  if (argc < 2) {
    return false;
  }
  args->command = argv[1];
  for (int i = 2; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--db" && i + 1 < argc) {
      args->db = argv[++i];
    } else if (arg == "--format" && i + 1 < argc) {
      args->format = argv[++i];
    } else if (arg == "--kwic") {
      args->kwic = true;
    } else if (arg == "--titles") {
      args->titles = true;
    } else if (arg == "--subjects") {
      args->subjects = true;
    } else if (arg == "--metrics") {
      args->metrics = true;
    } else if (arg.rfind("--", 0) == 0) {
      std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
      return false;
    } else {
      args->positional.push_back(std::move(arg));
    }
  }
  return !args->db.empty();
}

int RunIngest(core::AuthorIndex* catalog, const Args& args) {
  if (args.positional.size() != 1) {
    return Usage();
  }
  const std::string& path = args.positional[0];
  Result<std::string> contents = Env::Default()->ReadFileToString(path);
  if (!contents.ok()) {
    return Fail(contents.status());
  }
  Result<std::vector<Entry>> entries =
      (path.size() > 4 && path.substr(path.size() - 4) == ".bib")
          ? ParseBibTexToEntries(*contents)
          : ParseTsv(*contents);
  if (!entries.ok()) {
    return Fail(entries.status());
  }
  size_t count = entries->size();
  Status s = catalog->AddAll(std::move(entries).value());
  if (!s.ok()) {
    return Fail(s);
  }
  s = catalog->Flush();
  if (!s.ok()) {
    return Fail(s);
  }
  std::printf("ingested %zu entries (catalog now %zu entries, %zu authors)\n",
              count, catalog->entry_count(), catalog->group_count());
  return 0;
}

int RunQuery(core::AuthorIndex* catalog, const Args& args) {
  if (args.positional.size() != 1) {
    return Usage();
  }
  Result<query::QueryResult> result = catalog->Search(args.positional[0]);
  if (!result.ok()) {
    return Fail(result.status());
  }
  std::printf("%zu match(es) via %s\n", result->total_matches,
              std::string(query::PlanKindToString(result->plan)).c_str());
  for (const query::Hit& hit : result->hits) {
    const Entry* entry = catalog->GetEntry(hit.id);
    std::printf("%-30s  %-50.50s  %s\n",
                entry->author.ToIndexForm().c_str(), entry->title.c_str(),
                entry->citation.ToString().c_str());
  }
  return 0;
}

int RunTrace(core::AuthorIndex* catalog, const Args& args) {
  if (args.positional.size() != 1) {
    return Usage();
  }
  obs::Trace trace;
  Result<query::QueryResult> result =
      catalog->SearchTraced(args.positional[0], &trace);
  if (!result.ok()) {
    return Fail(result.status());
  }
  std::printf("%zu match(es) via %s\n\n", result->total_matches,
              std::string(query::PlanKindToString(result->plan)).c_str());
  std::printf("%s", trace.ToString().c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  if (!ParseArgs(argc, argv, &args)) {
    return Usage();
  }
  Result<std::unique_ptr<core::AuthorIndex>> catalog =
      core::AuthorIndex::OpenPersistent(args.db);
  if (!catalog.ok()) {
    return Fail(catalog.status());
  }

  if (args.command == "ingest") {
    return RunIngest(catalog->get(), args);
  }
  if (args.command == "query") {
    return RunQuery(catalog->get(), args);
  }
  if (args.command == "typeset") {
    if (args.kwic) {
      std::printf("%s", format::KwicIndexToString(**catalog).c_str());
    } else if (args.titles) {
      for (const format::Page& page :
           format::TypesetTitleIndex(**catalog)) {
        std::printf("%s\n", page.text.c_str());
      }
    } else if (args.subjects) {
      std::printf("%s",
                  format::SubjectIndexToString(
                      **catalog, format::SubjectVocabulary::LegalDefault())
                      .c_str());
    } else {
      for (const format::Page& page : format::TypesetAuthorIndex(**catalog)) {
        std::printf("%s\n", page.text.c_str());
      }
    }
    return 0;
  }
  if (args.command == "export") {
    if (args.format == "csv") {
      std::printf("%s", format::CatalogToCsv(**catalog).c_str());
    } else if (args.format == "json") {
      std::printf("%s", format::CatalogToJson(**catalog).c_str());
    } else {
      return Usage();
    }
    return 0;
  }
  if (args.command == "stats") {
    if (args.metrics) {
      std::printf("%s", format::MetricsToPrometheusText(
                            (*catalog)->GetMetricsSnapshot())
                            .c_str());
      return 0;
    }
    std::printf("%s", core::ComputeStats(**catalog).ToString().c_str());
    auto storage = (*catalog)->StorageStats();
    std::printf("storage: l0=%d l1=%d puts=%llu\n", storage.l0_files,
                storage.l1_files,
                static_cast<unsigned long long>(storage.puts));
    return 0;
  }
  if (args.command == "trace") {
    return RunTrace(catalog->get(), args);
  }
  if (args.command == "compact") {
    Status s = (*catalog)->CompactStorage();
    if (!s.ok()) {
      return Fail(s);
    }
    std::printf("compacted\n");
    return 0;
  }
  return Usage();
}
