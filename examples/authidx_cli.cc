// authidx_cli — command-line front end over a persistent catalog.
//
//   authidx_cli ingest  --db DIR FILE.tsv|FILE.bib   load entries
//   authidx_cli query   --db DIR 'QUERY'             structured search
//   authidx_cli typeset --db DIR [--kwic|--titles|--subjects]
//   authidx_cli export  --db DIR --format csv|json   dump the catalog
//   authidx_cli stats   --db DIR [--metrics]         corpus statistics
//   authidx_cli trace   --db DIR 'QUERY'             query with span tree
//   authidx_cli compact --db DIR                     storage maintenance
//   authidx_cli serve   --db DIR --port N            HTTP observability
//   authidx_cli slowlog --db DIR 'QUERY'...          slow-query capture
//   authidx_cli remote  --port N <op> [args]         talk to authidx_server
//
// `remote` needs no --db: it speaks the binary wire protocol
// (docs/PROTOCOL.md) to a running authidx_server.
//
// Exit status: 0 on success, 1 on usage errors, 2 on runtime failures.

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "authidx/common/env.h"
#include "authidx/common/strings.h"
#include "authidx/core/author_index.h"
#include "authidx/core/stats.h"
#include "authidx/format/export.h"
#include "authidx/format/kwic.h"
#include "authidx/format/metrics_text.h"
#include "authidx/format/subject_index.h"
#include "authidx/format/title_index.h"
#include "authidx/format/typeset.h"
#include "authidx/net/client.h"
#include "authidx/obs/http_server.h"
#include "authidx/obs/log.h"
#include "authidx/obs/slowlog.h"
#include "authidx/obs/trace.h"
#include "authidx/parse/bibtex.h"
#include "authidx/parse/tsv.h"
#include "authidx/query/planner.h"

namespace {

using namespace authidx;

int Usage() {
  std::fprintf(
      stderr,
      "usage: authidx_cli <command> --db DIR [args]\n"
      "  ingest  --db DIR FILE      load .tsv or .bib entries\n"
      "  query   --db DIR 'QUERY'   e.g. 'author:mc* coal year:1975..'\n"
      "  typeset --db DIR [--kwic|--titles|--subjects]\n"
      "                             print the author/KWIC/title/subject index\n"
      "  export  --db DIR --format csv|json\n"
      "  stats   --db DIR [--metrics]\n"
      "                             --metrics: Prometheus text exposition\n"
      "  trace   --db DIR 'QUERY'   run QUERY and print its span tree\n"
      "  compact --db DIR\n"
      "  verify  --db DIR           scan the store, re-checking every\n"
      "                             block checksum and the manifest\n"
      "  serve   --db DIR [--port N] [--slow-ms N]\n"
      "                             HTTP /metrics /healthz /varz /slowlog\n"
      "  slowlog --db DIR [--slow-ms N] 'QUERY'...\n"
      "                             run queries, print captured slow log\n"
      "  remote  [--host H] --port N ping|stats|flush\n"
      "  remote  [--host H] --port N [--trace] query 'QUERY'\n"
      "  remote  [--host H] --port N add FILE.tsv\n"
      "                             talk to a running authidx_server;\n"
      "                             --trace prints the trace id and the\n"
      "                             server-side span tree;\n"
      "                             --deadline-ms N bounds each call;\n"
      "                             --replica HOST:PORT (repeatable) adds\n"
      "                             read-failover endpoints\n"
      "common flags: --log-level debug|info|warn|error, --log-file PATH\n");
  return 1;
}

int Fail(const Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 2;
}

struct Args {
  std::string command;
  std::string db;
  std::string host = "127.0.0.1";
  std::string format = "csv";
  bool kwic = false;
  bool titles = false;
  bool subjects = false;
  bool metrics = false;
  int port = 8080;
  bool port_set = false;
  int64_t slow_ms = -1;  // -1 = not set.
  int64_t deadline_ms = 0;  // 0 = no per-call deadline.
  std::vector<std::string> replicas;
  bool trace = false;
  std::string log_level;
  std::string log_file;
  std::vector<std::string> positional;
};

bool ParseArgs(int argc, char** argv, Args* args) {
  if (argc < 2) {
    return false;
  }
  args->command = argv[1];
  for (int i = 2; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--db" && i + 1 < argc) {
      args->db = argv[++i];
    } else if (arg == "--host" && i + 1 < argc) {
      args->host = argv[++i];
    } else if (arg == "--format" && i + 1 < argc) {
      args->format = argv[++i];
    } else if (arg == "--kwic") {
      args->kwic = true;
    } else if (arg == "--titles") {
      args->titles = true;
    } else if (arg == "--subjects") {
      args->subjects = true;
    } else if (arg == "--metrics") {
      args->metrics = true;
    } else if (arg == "--trace") {
      args->trace = true;
    } else if (arg == "--port" && i + 1 < argc) {
      Result<int64_t> port = ParseInt64(argv[++i]);
      if (!port.ok() || *port < 0 || *port > 65535) {
        std::fprintf(stderr, "bad --port value\n");
        return false;
      }
      args->port = static_cast<int>(*port);
      args->port_set = true;
    } else if (arg == "--deadline-ms" && i + 1 < argc) {
      Result<int64_t> ms = ParseInt64(argv[++i]);
      if (!ms.ok() || *ms <= 0) {
        std::fprintf(stderr, "bad --deadline-ms value\n");
        return false;
      }
      args->deadline_ms = *ms;
    } else if (arg == "--replica" && i + 1 < argc) {
      args->replicas.emplace_back(argv[++i]);
    } else if (arg == "--slow-ms" && i + 1 < argc) {
      Result<int64_t> ms = ParseInt64(argv[++i]);
      if (!ms.ok() || *ms < 0) {
        std::fprintf(stderr, "bad --slow-ms value\n");
        return false;
      }
      args->slow_ms = *ms;
    } else if (arg == "--log-level" && i + 1 < argc) {
      args->log_level = argv[++i];
    } else if (arg == "--log-file" && i + 1 < argc) {
      args->log_file = argv[++i];
    } else if (arg.rfind("--", 0) == 0) {
      std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
      return false;
    } else {
      args->positional.push_back(std::move(arg));
    }
  }
  // `remote` talks to a server instead of opening a catalog.
  return !args->db.empty() || args->command == "remote";
}

int RunIngest(core::AuthorIndex* catalog, const Args& args) {
  if (args.positional.size() != 1) {
    return Usage();
  }
  const std::string& path = args.positional[0];
  Result<std::string> contents = Env::Default()->ReadFileToString(path);
  if (!contents.ok()) {
    return Fail(contents.status());
  }
  Result<std::vector<Entry>> entries =
      (path.size() > 4 && path.substr(path.size() - 4) == ".bib")
          ? ParseBibTexToEntries(*contents)
          : ParseTsv(*contents);
  if (!entries.ok()) {
    return Fail(entries.status());
  }
  size_t count = entries->size();
  Status s = catalog->AddAll(std::move(entries).value());
  if (!s.ok()) {
    return Fail(s);
  }
  s = catalog->Flush();
  if (!s.ok()) {
    return Fail(s);
  }
  std::printf("ingested %zu entries (catalog now %zu entries, %zu authors)\n",
              count, catalog->entry_count(), catalog->group_count());
  return 0;
}

int RunQuery(core::AuthorIndex* catalog, const Args& args) {
  if (args.positional.size() != 1) {
    return Usage();
  }
  Result<query::QueryResult> result = catalog->Search(args.positional[0]);
  if (!result.ok()) {
    return Fail(result.status());
  }
  std::printf("%zu match(es) via %s\n", result->total_matches,
              std::string(query::PlanKindToString(result->plan)).c_str());
  for (const query::Hit& hit : result->hits) {
    const Entry* entry = catalog->GetEntry(hit.id);
    std::printf("%-30s  %-50.50s  %s\n",
                entry->author.ToIndexForm().c_str(), entry->title.c_str(),
                entry->citation.ToString().c_str());
  }
  return 0;
}

// Set by SIGINT/SIGTERM so the serve loop can exit cleanly.
std::atomic<bool> g_stop{false};

void HandleStopSignal(int) { g_stop.store(true, std::memory_order_relaxed); }

int RunServe(core::AuthorIndex* catalog, obs::Logger* logger,
             const Args& args) {
  if (args.slow_ms >= 0) {
    // 0 ms arms capture-everything (1 ns floor), matching slowlog.
    catalog->SetSlowQueryThreshold(
        args.slow_ms > 0 ? static_cast<uint64_t>(args.slow_ms) * 1000000u
                         : 1);
  }
  uint64_t start_ns = obs::MonotonicNowNs();
  obs::HttpServer server;
  server.Route("/metrics", [catalog] {
    obs::HttpResponse r;
    r.content_type = "text/plain; version=0.0.4; charset=utf-8";
    r.body = format::MetricsToPrometheusText(catalog->GetMetricsSnapshot());
    return r;
  });
  server.Route("/healthz", [catalog, logger] {
    obs::HttpResponse r;
    // A sticky storage error outranks logged errors: the store is
    // read-only until reopened, so load balancers must drain writes.
    if (catalog->StorageDegraded()) {
      r.status = 503;
      r.body =
          "degraded: " + catalog->StorageBackgroundError().ToString() + "\n";
    } else if (logger->error_count() != 0) {
      r.status = 503;
      r.body = "degraded: " + logger->last_error() + "\n";
    } else {
      r.body = "ok\n";
    }
    return r;
  });
  server.Route("/varz", [catalog, logger, start_ns] {
    obs::HttpResponse r;
    r.content_type = "application/json";
    std::string body = "{\"build\":{\"compiler\":";
    body += JsonQuote(__VERSION__);
    body += ",\"cplusplus\":" + std::to_string(__cplusplus) + "}";
    body += ",\"uptime_ms\":" +
            std::to_string((obs::MonotonicNowNs() - start_ns) / 1000000u);
    body += ",\"log_errors\":" + std::to_string(logger->error_count());
    body += ",\"last_error\":" + JsonQuote(logger->last_error());
    body += ",\"slow_query_threshold_ns\":" +
            std::to_string(catalog->slow_query_threshold_ns());
    body += ",\"slow_queries_total\":" +
            std::to_string(catalog->slow_query_log().total_recorded());
    body += ",\"stats\":" + core::ComputeStats(*catalog).ToJson();
    body += "}";
    r.body = std::move(body);
    return r;
  });
  server.Route("/slowlog", [catalog] {
    obs::HttpResponse r;
    r.content_type = "application/json";
    r.body = obs::SlowQueryLog::ToJson(catalog->SlowQueries());
    return r;
  });
  Status s = server.Start(args.port);
  if (!s.ok()) {
    return Fail(s);
  }
  std::printf("serving on http://127.0.0.1:%d (/metrics /healthz /varz "
              "/slowlog); Ctrl-C stops\n",
              server.port());
  std::fflush(stdout);
  std::signal(SIGINT, HandleStopSignal);
  std::signal(SIGTERM, HandleStopSignal);
  while (!g_stop.load(std::memory_order_relaxed)) {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }
  server.Stop();
  std::printf("stopped after %llu request(s)\n",
              static_cast<unsigned long long>(server.requests_served()));
  return 0;
}

int RunSlowlog(core::AuthorIndex* catalog, const Args& args) {
  if (args.positional.empty()) {
    return Usage();
  }
  // Default threshold 0 ms -> capture every query (1 ns floor keeps the
  // capture path armed).
  uint64_t threshold_ns =
      args.slow_ms > 0 ? static_cast<uint64_t>(args.slow_ms) * 1000000u : 1;
  catalog->SetSlowQueryThreshold(threshold_ns);
  for (const std::string& query_text : args.positional) {
    Result<query::QueryResult> result = catalog->Search(query_text);
    if (!result.ok()) {
      std::fprintf(stderr, "query '%s' failed: %s\n", query_text.c_str(),
                   result.status().ToString().c_str());
    }
  }
  std::printf("%s\n",
              obs::SlowQueryLog::ToJson(catalog->SlowQueries()).c_str());
  return 0;
}

int RunRemote(obs::Logger* logger, const Args& args) {
  // The RPC port has no safe default (8080 is the HTTP observability
  // convention), so remote requires an explicit --port.
  if (args.positional.empty() || !args.port_set) {
    return Usage();
  }
  net::ClientOptions options;
  options.host = args.host;
  options.port = args.port;
  options.deadline_ms = static_cast<int>(args.deadline_ms);
  options.replicas = args.replicas;
  options.logger = logger;
  options.trace = args.trace;
  net::Client client(options);
  const std::string& op = args.positional[0];
  if (op == "ping") {
    if (Status s = client.Ping(); !s.ok()) {
      return Fail(s);
    }
    std::printf("pong from %s:%d\n", args.host.c_str(), args.port);
    return 0;
  }
  if (op == "query") {
    if (args.positional.size() != 2) {
      return Usage();
    }
    Result<net::WireQueryResult> result = client.Query(args.positional[1]);
    if (!result.ok()) {
      return Fail(result.status());
    }
    if (!args.replicas.empty()) {
      std::printf("answered by %s\n", client.current_endpoint().c_str());
    }
    std::printf("%llu match(es)\n",
                static_cast<unsigned long long>(result->total_matches));
    for (const net::WireHit& hit : result->hits) {
      std::printf("%-30s  %-50.50s  %s\n", hit.author.c_str(),
                  hit.title.c_str(), hit.citation.c_str());
    }
    if (args.trace) {
      const net::RpcTrace& rpc_trace = client.last_trace();
      if (rpc_trace.trace_id.IsZero()) {
        std::printf("\n(no trace returned by the server)\n");
      } else {
        std::printf("\ntrace_id=%s\n",
                    rpc_trace.trace_id.ToHex().c_str());
        obs::Trace tree;
        for (const obs::Trace::Span& span : rpc_trace.spans) {
          tree.AppendSpan(span.name, span.depth, span.start_ns,
                          span.duration_ns);
        }
        std::printf("%s", tree.ToString().c_str());
      }
    }
    return 0;
  }
  if (op == "add") {
    if (args.positional.size() != 2) {
      return Usage();
    }
    Result<std::string> contents =
        Env::Default()->ReadFileToString(args.positional[1]);
    if (!contents.ok()) {
      return Fail(contents.status());
    }
    std::vector<std::string> lines;
    size_t start = 0;
    while (start <= contents->size()) {
      size_t end = contents->find('\n', start);
      if (end == std::string::npos) {
        end = contents->size();
      }
      std::string line = contents->substr(start, end - start);
      if (!line.empty() && line.back() == '\r') {
        line.pop_back();
      }
      if (!line.empty() && line[0] != '#') {
        lines.push_back(std::move(line));
      }
      start = end + 1;
    }
    Result<uint64_t> added = client.Add(lines);
    if (!added.ok()) {
      return Fail(added.status());
    }
    std::printf("added %llu entries\n",
                static_cast<unsigned long long>(*added));
    return 0;
  }
  if (op == "stats") {
    Result<net::WireStats> stats = client.Stats();
    if (!stats.ok()) {
      return Fail(stats.status());
    }
    std::printf("entries: %llu\nauthors: %llu\n",
                static_cast<unsigned long long>(stats->entry_count),
                static_cast<unsigned long long>(stats->group_count));
    return 0;
  }
  if (op == "flush") {
    if (Status s = client.Flush(); !s.ok()) {
      return Fail(s);
    }
    std::printf("flushed\n");
    return 0;
  }
  return Usage();
}

int RunTrace(core::AuthorIndex* catalog, const Args& args) {
  if (args.positional.size() != 1) {
    return Usage();
  }
  obs::Trace trace;
  Result<query::QueryResult> result =
      catalog->SearchTraced(args.positional[0], &trace);
  if (!result.ok()) {
    return Fail(result.status());
  }
  std::printf("%zu match(es) via %s\n\n", result->total_matches,
              std::string(query::PlanKindToString(result->plan)).c_str());
  std::printf("%s", trace.ToString().c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  if (!ParseArgs(argc, argv, &args)) {
    return Usage();
  }

  // The logger is silent unless serve is running or the user asked for
  // it, so batch commands keep their exact historical output.
  obs::LogLevel level = obs::LogLevel::kInfo;
  if (!args.log_level.empty() &&
      !obs::ParseLogLevel(args.log_level, &level)) {
    std::fprintf(stderr, "unknown --log-level: %s\n",
                 args.log_level.c_str());
    return Usage();
  }
  obs::Logger logger(level);
  if (args.command == "serve" || !args.log_level.empty()) {
    logger.AddSink(std::make_unique<obs::StderrSink>());
  }
  if (!args.log_file.empty()) {
    Result<std::unique_ptr<obs::RotatingFileSink>> sink =
        obs::RotatingFileSink::Open(Env::Default(), args.log_file);
    if (!sink.ok()) {
      return Fail(sink.status());
    }
    logger.AddSink(std::move(sink).value());
  }

  if (args.command == "remote") {
    return RunRemote(&logger, args);
  }

  storage::EngineOptions options;
  options.logger = &logger;
  Result<std::unique_ptr<core::AuthorIndex>> catalog =
      core::AuthorIndex::OpenPersistent(args.db, options);
  if (!catalog.ok()) {
    return Fail(catalog.status());
  }

  if (args.command == "ingest") {
    return RunIngest(catalog->get(), args);
  }
  if (args.command == "query") {
    return RunQuery(catalog->get(), args);
  }
  if (args.command == "typeset") {
    if (args.kwic) {
      std::printf("%s", format::KwicIndexToString(**catalog).c_str());
    } else if (args.titles) {
      for (const format::Page& page :
           format::TypesetTitleIndex(**catalog)) {
        std::printf("%s\n", page.text.c_str());
      }
    } else if (args.subjects) {
      std::printf("%s",
                  format::SubjectIndexToString(
                      **catalog, format::SubjectVocabulary::LegalDefault())
                      .c_str());
    } else {
      for (const format::Page& page : format::TypesetAuthorIndex(**catalog)) {
        std::printf("%s\n", page.text.c_str());
      }
    }
    return 0;
  }
  if (args.command == "export") {
    if (args.format == "csv") {
      std::printf("%s", format::CatalogToCsv(**catalog).c_str());
    } else if (args.format == "json") {
      std::printf("%s", format::CatalogToJson(**catalog).c_str());
    } else {
      return Usage();
    }
    return 0;
  }
  if (args.command == "stats") {
    if (args.metrics) {
      std::printf("%s", format::MetricsToPrometheusText(
                            (*catalog)->GetMetricsSnapshot())
                            .c_str());
      return 0;
    }
    std::printf("%s", core::ComputeStats(**catalog).ToString().c_str());
    auto storage = (*catalog)->StorageStats();
    std::printf("storage: l0=%d l1=%d puts=%llu\n", storage.l0_files,
                storage.l1_files,
                static_cast<unsigned long long>(storage.puts));
    return 0;
  }
  if (args.command == "trace") {
    return RunTrace(catalog->get(), args);
  }
  if (args.command == "serve") {
    return RunServe(catalog->get(), &logger, args);
  }
  if (args.command == "slowlog") {
    return RunSlowlog(catalog->get(), args);
  }
  if (args.command == "compact") {
    Status s = (*catalog)->CompactStorage();
    if (!s.ok()) {
      return Fail(s);
    }
    std::printf("compacted\n");
    return 0;
  }
  if (args.command == "verify") {
    Result<storage::IntegrityReport> report =
        (*catalog)->VerifyStorageIntegrity();
    if (!report.ok()) {
      return Fail(report.status());
    }
    std::printf("manifest: %s\n", report->manifest_status.ok()
                                      ? "ok"
                                      : report->manifest_status.ToString()
                                            .c_str());
    for (const storage::FileIntegrity& file : report->files) {
      std::printf("table %llu (level %d): %s (%llu entries)\n",
                  static_cast<unsigned long long>(file.file_number),
                  file.level,
                  file.status.ok() ? "ok" : file.status.ToString().c_str(),
                  static_cast<unsigned long long>(file.entries_scanned));
    }
    if (!report->clean()) {
      std::fprintf(stderr, "error: integrity scan found damage (%llu "
                   "corrupt table(s))\n",
                   static_cast<unsigned long long>(report->corrupt_files));
      return 2;
    }
    std::printf("verified: %zu table(s) clean\n", report->files.size());
    return 0;
  }
  return Usage();
}
