// Quickstart: build an in-memory author index from a few entries, run
// structured queries, and print one page of the typeset index.
//
//   ./quickstart

#include <cstdio>

#include "authidx/core/author_index.h"
#include "authidx/format/typeset.h"
#include "authidx/parse/tsv.h"
#include "authidx/query/planner.h"

int main() {
  using namespace authidx;

  // 1. Entries arrive as TSV: author <TAB> title <TAB> vol:page (year).
  const char* kTsv =
      "Minow, Martha\tAll in the Family & In All Families: Membership, "
      "Loving, and Owing\t95:275 (1992)\n"
      "Cox, Archibald\tEthics in Government: The Cornerstone of Public "
      "Trust\t94:281 (1991)\n"
      "McGinley, Patrick C.\tProhibition of Strip Mining in West "
      "Virginia\t78:445 (1976)\n"
      "McGinley, Patrick C.\tPandora in the Coal Fields: Environmental "
      "Liabilities, Acquisitions, and Dispositions of Coal Properties\t"
      "87:665 (1985)\n"
      "Brown, Kelley L.*\tProsecuting Child Sexual Abuse: A Survey of "
      "Evidentiary Modifications in West Virginia\t95:1091 (1993)\n";
  Result<std::vector<Entry>> entries = ParseTsv(kTsv);
  if (!entries.ok()) {
    std::fprintf(stderr, "parse failed: %s\n",
                 entries.status().ToString().c_str());
    return 1;
  }

  // 2. Ingest into an in-memory catalog.
  auto catalog = core::AuthorIndex::Create();
  Status ingest = catalog->AddAll(std::move(entries).value());
  if (!ingest.ok()) {
    std::fprintf(stderr, "ingest failed: %s\n", ingest.ToString().c_str());
    return 1;
  }
  std::printf("indexed %zu entries, %zu distinct authors\n\n",
              catalog->entry_count(), catalog->group_count());

  // 3. Query it.
  for (const char* q : {"author:mcginley", "coal", "student:yes",
                        "year:1991..1993"}) {
    Result<query::QueryResult> result = catalog->Search(q);
    if (!result.ok()) {
      std::fprintf(stderr, "query failed: %s\n",
                   result.status().ToString().c_str());
      return 1;
    }
    std::printf("query %-18s -> %zu match(es) via %s\n", q,
                result->total_matches,
                std::string(query::PlanKindToString(result->plan)).c_str());
    for (const query::Hit& hit : result->hits) {
      const Entry* entry = catalog->GetEntry(hit.id);
      std::printf("    %-28s %s %s\n",
                  entry->author.ToIndexForm().c_str(),
                  entry->title.substr(0, 40).c_str(),
                  entry->citation.ToString().c_str());
    }
  }

  // 4. Typeset the printed index.
  std::printf("\n--- typeset page 1 ---\n");
  auto pages = format::TypesetAuthorIndex(*catalog);
  std::printf("%s", pages.front().text.c_str());
  return 0;
}
