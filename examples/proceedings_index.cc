// Proceedings-scale round trip: generates a synthetic corpus the size of
// a large conference proceedings (the VLDB 2000 substitution; DESIGN.md
// §4), persists it through the LSM storage engine, reopens the
// directory, and runs a query batch over the recovered catalog.
//
//   ./proceedings_index [--entries N] [--dir PATH]

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>

#include "authidx/core/author_index.h"
#include "authidx/core/stats.h"
#include "authidx/query/planner.h"
#include "authidx/workload/corpus.h"

namespace {

double Seconds(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace authidx;

  size_t entries = 20000;
  std::string dir =
      std::filesystem::temp_directory_path().string() + "/proceedings_index";
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], "--entries") == 0) {
      entries = static_cast<size_t>(std::atoll(argv[i + 1]));
    } else if (std::strcmp(argv[i], "--dir") == 0) {
      dir = argv[i + 1];
    }
  }
  std::filesystem::remove_all(dir);

  workload::CorpusOptions copt;
  copt.entries = entries;
  copt.authors = entries / 8 + 2;
  std::vector<Entry> corpus = workload::GenerateCorpus(copt);
  std::printf("generated %zu entries\n", corpus.size());

  // Phase 1: ingest through the storage engine.
  auto start = std::chrono::steady_clock::now();
  {
    storage::EngineOptions eopt;
    eopt.memtable_bytes = 2 * 1024 * 1024;
    Result<std::unique_ptr<core::AuthorIndex>> catalog =
        core::AuthorIndex::OpenPersistent(dir, eopt);
    if (!catalog.ok()) {
      std::fprintf(stderr, "open failed: %s\n",
                   catalog.status().ToString().c_str());
      return 1;
    }
    Status ingest = (*catalog)->AddAll(corpus);
    if (!ingest.ok()) {
      std::fprintf(stderr, "ingest failed: %s\n", ingest.ToString().c_str());
      return 1;
    }
    Status compact = (*catalog)->CompactStorage();
    if (!compact.ok()) {
      std::fprintf(stderr, "compact failed: %s\n",
                   compact.ToString().c_str());
      return 1;
    }
    auto stats = (*catalog)->StorageStats();
    std::printf(
        "ingested+persisted in %.2fs (%.0f entries/s); flushes=%llu "
        "compactions=%llu\n",
        Seconds(start), static_cast<double>(entries) / Seconds(start),
        static_cast<unsigned long long>(stats.flushes),
        static_cast<unsigned long long>(stats.compactions));
  }

  // Phase 2: reopen (recovery) and query.
  start = std::chrono::steady_clock::now();
  Result<std::unique_ptr<core::AuthorIndex>> catalog =
      core::AuthorIndex::OpenPersistent(dir);
  if (!catalog.ok()) {
    std::fprintf(stderr, "reopen failed: %s\n",
                 catalog.status().ToString().c_str());
    return 1;
  }
  std::printf("reopened %zu entries in %.2fs\n\n",
              (*catalog)->entry_count(), Seconds(start));

  const char* queries[] = {
      "author:miller limit:5",
      "author:mc* limit:5",
      "author~milner limit:5",
      "coal mining limit:5",
      "title:reform year:1975..1985 limit:5",
      "mining safety order:relevance limit:5",
      "student:yes vol:82 limit:5",
  };
  for (const char* q : queries) {
    auto qstart = std::chrono::steady_clock::now();
    Result<query::QueryResult> result = (*catalog)->Search(q);
    if (!result.ok()) {
      std::fprintf(stderr, "query '%s' failed: %s\n", q,
                   result.status().ToString().c_str());
      return 1;
    }
    std::printf("%-45s %6zu matches  %8.1fus  [%s]\n", q,
                result->total_matches, Seconds(qstart) * 1e6,
                std::string(query::PlanKindToString(result->plan)).c_str());
    for (const query::Hit& hit : result->hits) {
      const Entry* entry = (*catalog)->GetEntry(hit.id);
      std::printf("    %-30s %s\n", entry->author.ToIndexForm().c_str(),
                  entry->citation.ToString().c_str());
    }
  }

  core::CatalogStats stats = core::ComputeStats(**catalog, 5);
  std::printf("\n%s", stats.ToString().c_str());
  std::filesystem::remove_all(dir);
  return 0;
}
