// Reproduces the source document: ingests the embedded sample of the
// West Virginia Law Review cumulative Author Index (95 W. Va. L. Rev.
// 1365 (1993)) and re-typesets it in the original's layout, then prints
// catalog statistics.
//
//   ./law_review_index [--pages N]

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "authidx/core/author_index.h"
#include "authidx/core/stats.h"
#include "authidx/format/kwic.h"
#include "authidx/format/typeset.h"
#include "authidx/workload/sample_data.h"

int main(int argc, char** argv) {
  using namespace authidx;

  size_t max_pages = 2;
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], "--pages") == 0) {
      max_pages = static_cast<size_t>(std::atoi(argv[i + 1]));
    }
  }

  Result<std::vector<Entry>> entries = workload::LoadSampleEntries();
  if (!entries.ok()) {
    std::fprintf(stderr, "embedded corpus failed to parse: %s\n",
                 entries.status().ToString().c_str());
    return 1;
  }
  auto catalog = core::AuthorIndex::Create();
  Status ingest = catalog->AddAll(std::move(entries).value());
  if (!ingest.ok()) {
    std::fprintf(stderr, "ingest failed: %s\n", ingest.ToString().c_str());
    return 1;
  }

  // The source's layout: footers alternate volume line / year line, and
  // pagination starts at 1365.
  format::TypesetOptions options;
  options.first_page_number = 1365;
  options.footer_left = "[Vol. 95:1365";
  options.footer_right = "1993]";
  auto pages = format::TypesetAuthorIndex(*catalog, options);
  std::printf("typeset %zu pages; showing the first %zu\n\n", pages.size(),
              max_pages);
  for (size_t i = 0; i < pages.size() && i < max_pages; ++i) {
    std::printf("%s\n%s\n", pages[i].text.c_str(),
                std::string(78, '=').c_str());
  }

  core::CatalogStats stats = core::ComputeStats(*catalog);
  std::printf("\n--- catalog statistics ---\n%s", stats.ToString().c_str());

  // Cross-reference demo: who co-published with Samuel Ameri?
  std::printf("\ncoauthors of Ameri, Samuel J.:\n");
  for (const std::string& name : catalog->CoauthorsOf("ameri, samuel j.")) {
    std::printf("  %s\n", name.c_str());
  }

  // KWIC permuted title index: first 20 lines.
  std::printf("\n--- KWIC index (first 20 lines) ---\n");
  std::string kwic = format::KwicIndexToString(*catalog);
  size_t pos = 0;
  for (int i = 0; i < 20 && pos != std::string::npos; ++i) {
    size_t next = kwic.find('\n', pos);
    std::printf("%s\n", kwic.substr(pos, next - pos).c_str());
    pos = (next == std::string::npos) ? next : next + 1;
  }
  return 0;
}
