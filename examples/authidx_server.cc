// authidx_server — the standalone network front end over a persistent
// catalog (docs/SERVER.md is the operator guide).
//
//   authidx_server --db DIR [--port N] [--workers N] [--queue-limit N]
//                  [--max-conns N] [--max-pipeline N]
//                  [--max-frame-bytes N] [--http-port N] [--slow-ms N]
//                  [--result-cache-mb N] [--trace-sample-every N]
//                  [--log-level L] [--log-file PATH]
//
// Speaks the binary wire protocol (docs/PROTOCOL.md) on --port and,
// when --http-port is given, serves the HTTP observability surface
// (/metrics /healthz /varz /slowlog /rpcz /tracez) from the same
// process — one metrics registry covers the engine and the RPC layer.
// SIGINT/SIGTERM stop accepting, drain queued requests, and exit 0.
//
// Exit status: 0 on clean shutdown, 1 on usage errors, 2 on runtime
// failures.

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>

#include "authidx/common/env.h"
#include "authidx/common/strings.h"
#include "authidx/core/author_index.h"
#include "authidx/format/metrics_text.h"
#include "authidx/net/server.h"
#include "authidx/obs/http_server.h"
#include "authidx/obs/log.h"
#include "authidx/obs/slowlog.h"

namespace {

using namespace authidx;

int Usage() {
  std::fprintf(
      stderr,
      "usage: authidx_server --db DIR [flags]\n"
      "  --port N             RPC port (default 7070; 0 = ephemeral)\n"
      "  --workers N          request worker threads (default 4)\n"
      "  --queue-limit N      shed when the worker queue holds N "
      "(default 256)\n"
      "  --max-conns N        reject connections beyond N (default 1024)\n"
      "  --max-pipeline N     shed beyond N in-flight per connection "
      "(default 64)\n"
      "  --max-frame-bytes N  drop connections announcing bigger frames\n"
      "  --http-port N        also serve HTTP /metrics /healthz /varz "
      "/slowlog /rpcz /tracez\n"
      "  --slow-ms N          arm the slow-query log at N ms\n"
      "  --result-cache-mb N  cache query results in N MiB, "
      "epoch-invalidated (0 = off)\n"
      "  --trace-sample-every N  record a span tree for 1 in N "
      "untraced requests (0 = off)\n"
      "  --log-level L        debug|info|warn|error (default info)\n"
      "  --log-file PATH      also log to a rotating file\n");
  return 1;
}

int Fail(const Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 2;
}

struct Args {
  std::string db;
  int port = 7070;
  int workers = 4;
  int64_t queue_limit = 256;
  int64_t max_conns = 1024;
  int64_t max_pipeline = 64;
  int64_t max_frame_bytes = 0;  // 0 = protocol default.
  int http_port = -1;           // -1 = no HTTP endpoint.
  int64_t slow_ms = -1;
  int64_t result_cache_mb = 0;
  int64_t trace_sample_every = 0;
  std::string log_level;
  std::string log_file;
};

bool ParsePort(const char* text, int* out) {
  Result<int64_t> value = ParseInt64(text);
  if (!value.ok() || *value < 0 || *value > 65535) {
    return false;
  }
  *out = static_cast<int>(*value);
  return true;
}

bool ParseArgs(int argc, char** argv, Args* args) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    auto parse_count = [&](int64_t* out) {
      const char* text = next();
      if (text == nullptr) {
        return false;
      }
      Result<int64_t> value = ParseInt64(text);
      if (!value.ok() || *value <= 0) {
        return false;
      }
      *out = *value;
      return true;
    };
    if (arg == "--db") {
      const char* value = next();
      if (value == nullptr) {
        return false;
      }
      args->db = value;
    } else if (arg == "--port") {
      const char* value = next();
      if (value == nullptr || !ParsePort(value, &args->port)) {
        return false;
      }
    } else if (arg == "--http-port") {
      const char* value = next();
      if (value == nullptr || !ParsePort(value, &args->http_port)) {
        return false;
      }
    } else if (arg == "--workers") {
      int64_t workers = 0;
      if (!parse_count(&workers) || workers > 1024) {
        return false;
      }
      args->workers = static_cast<int>(workers);
    } else if (arg == "--queue-limit") {
      if (!parse_count(&args->queue_limit)) {
        return false;
      }
    } else if (arg == "--max-conns") {
      if (!parse_count(&args->max_conns)) {
        return false;
      }
    } else if (arg == "--max-pipeline") {
      if (!parse_count(&args->max_pipeline)) {
        return false;
      }
    } else if (arg == "--max-frame-bytes") {
      if (!parse_count(&args->max_frame_bytes)) {
        return false;
      }
    } else if (arg == "--slow-ms") {
      const char* text = next();
      if (text == nullptr) {
        return false;
      }
      Result<int64_t> value = ParseInt64(text);
      if (!value.ok() || *value < 0) {
        return false;
      }
      args->slow_ms = *value;
    } else if (arg == "--result-cache-mb") {
      const char* text = next();
      if (text == nullptr) {
        return false;
      }
      Result<int64_t> value = ParseInt64(text);
      if (!value.ok() || *value < 0) {
        return false;
      }
      args->result_cache_mb = *value;
    } else if (arg == "--trace-sample-every") {
      const char* text = next();
      if (text == nullptr) {
        return false;
      }
      Result<int64_t> value = ParseInt64(text);
      if (!value.ok() || *value < 0) {
        return false;
      }
      args->trace_sample_every = *value;
    } else if (arg == "--log-level") {
      const char* value = next();
      if (value == nullptr) {
        return false;
      }
      args->log_level = value;
    } else if (arg == "--log-file") {
      const char* value = next();
      if (value == nullptr) {
        return false;
      }
      args->log_file = value;
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
      return false;
    }
  }
  return !args->db.empty();
}

// Set by SIGINT/SIGTERM so the main loop can drain and exit.
std::atomic<bool> g_stop{false};

void HandleStopSignal(int) { g_stop.store(true, std::memory_order_relaxed); }

}  // namespace

int main(int argc, char** argv) {
  Args args;
  if (!ParseArgs(argc, argv, &args)) {
    return Usage();
  }

  obs::LogLevel level = obs::LogLevel::kInfo;
  if (!args.log_level.empty() &&
      !obs::ParseLogLevel(args.log_level, &level)) {
    std::fprintf(stderr, "unknown --log-level: %s\n",
                 args.log_level.c_str());
    return Usage();
  }
  obs::Logger logger(level);
  logger.AddSink(std::make_unique<obs::StderrSink>());
  if (!args.log_file.empty()) {
    Result<std::unique_ptr<obs::RotatingFileSink>> sink =
        obs::RotatingFileSink::Open(Env::Default(), args.log_file);
    if (!sink.ok()) {
      return Fail(sink.status());
    }
    logger.AddSink(std::move(sink).value());
  }

  storage::EngineOptions engine_options;
  engine_options.logger = &logger;
  Result<std::unique_ptr<core::AuthorIndex>> catalog =
      core::AuthorIndex::OpenPersistent(args.db, engine_options);
  if (!catalog.ok()) {
    return Fail(catalog.status());
  }
  if (args.slow_ms >= 0) {
    (*catalog)->SetSlowQueryThreshold(
        args.slow_ms > 0 ? static_cast<uint64_t>(args.slow_ms) * 1000000u
                         : 1);
  }
  if (args.result_cache_mb > 0) {
    (*catalog)->EnableResultCache(
        static_cast<size_t>(args.result_cache_mb) * 1024 * 1024);
  }

  net::ServerOptions options;
  options.port = args.port;
  options.num_workers = args.workers;
  options.queue_limit = static_cast<size_t>(args.queue_limit);
  options.max_connections = static_cast<size_t>(args.max_conns);
  options.max_pipeline = static_cast<size_t>(args.max_pipeline);
  if (args.max_frame_bytes > 0) {
    options.max_frame_bytes = static_cast<size_t>(args.max_frame_bytes);
  }
  options.trace_sample_every =
      static_cast<uint64_t>(args.trace_sample_every);
  // Shared registry: engine and RPC instruments on one /metrics page.
  options.metrics = (*catalog)->mutable_metrics();
  options.logger = &logger;
  net::Server server(catalog->get(), options);
  if (Status s = server.Start(); !s.ok()) {
    return Fail(s);
  }

  obs::HttpServer http;
  if (args.http_port >= 0) {
    core::AuthorIndex* raw = catalog->get();
    obs::Logger* log = &logger;
    http.Route("/metrics", [raw] {
      obs::HttpResponse r;
      r.content_type = "text/plain; version=0.0.4; charset=utf-8";
      r.body = format::MetricsToPrometheusText(raw->GetMetricsSnapshot());
      return r;
    });
    http.Route("/healthz", [raw, log] {
      obs::HttpResponse r;
      // Sticky storage degradation outranks logged errors: writes fail
      // fast until the store is reopened, so drain write traffic.
      if (raw->StorageDegraded()) {
        r.status = 503;
        r.body =
            "degraded: " + raw->StorageBackgroundError().ToString() + "\n";
      } else if (log->error_count() != 0) {
        r.status = 503;
        r.body = "degraded: " + log->last_error() + "\n";
      } else {
        r.body = "ok\n";
      }
      return r;
    });
    http.Route("/slowlog", [raw] {
      obs::HttpResponse r;
      r.content_type = "application/json";
      r.body = obs::SlowQueryLog::ToJson(raw->SlowQueries());
      return r;
    });
    net::Server* rpc = &server;
    http.Route("/rpcz", [rpc] {
      obs::HttpResponse r;
      r.content_type = "application/json";
      r.body = rpc->RpczJson();
      return r;
    });
    http.Route("/tracez", [rpc] {
      obs::HttpResponse r;
      r.content_type = "text/plain; charset=utf-8";
      r.body = rpc->TracezText();
      return r;
    });
    if (Status s = http.Start(args.http_port); !s.ok()) {
      server.Stop();
      return Fail(s);
    }
  }

  std::printf("authidx_server: rpc on 127.0.0.1:%d", server.port());
  if (args.http_port >= 0) {
    std::printf(", http on 127.0.0.1:%d", http.port());
  }
  std::printf(" (%zu entries); Ctrl-C drains and stops\n",
              (*catalog)->entry_count());
  std::fflush(stdout);

  std::signal(SIGINT, HandleStopSignal);
  std::signal(SIGTERM, HandleStopSignal);
  while (!g_stop.load(std::memory_order_relaxed)) {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }

  server.Stop();
  if (args.http_port >= 0) {
    http.Stop();
  }
  if (Status s = (*catalog)->Flush(); !s.ok()) {
    std::fprintf(stderr, "flush on shutdown: %s\n", s.ToString().c_str());
  }
  std::printf("stopped\n");
  return 0;
}
