// Imports proceedings metadata from BibTeX, builds the author index,
// and prints both the classic author index and the KWIC permuted title
// index — the two front-matter artifacts a proceedings volume carries.
//
//   ./bibtex_import [file.bib]

#include <cstdio>

#include "authidx/common/env.h"
#include "authidx/core/author_index.h"
#include "authidx/format/kwic.h"
#include "authidx/format/typeset.h"
#include "authidx/parse/bibtex.h"

namespace {

// A miniature VLDB-2000-flavored bibliography used when no file is given.
constexpr const char* kBuiltinBib = R"bib(
@inproceedings{aggarwal00,
  author = {Charu C. Aggarwal and Philip S. Yu},
  title  = {Finding Generalized Projected Clusters in High Dimensional Spaces},
  year   = {2000}, volume = {29}, pages = {70--81},
}
@inproceedings{chaudhuri00,
  author = {Surajit Chaudhuri and Gautam Das and Vivek Narasayya},
  title  = {A Robust, Optimization-Based Approach for Approximate Answering
            of Aggregate Queries},
  year   = {2000}, volume = {29}, pages = {295--306},
}
@inproceedings{hellerstein00,
  author = {Joseph M. Hellerstein and Michael J. Franklin},
  title  = {Adaptive Query Processing: Technology in Evolution},
  year   = {2000}, volume = {23}, pages = {7--18},
}
@inproceedings{stonebraker00,
  author = {Stonebraker, Michael},
  title  = {One Size Fits All: An Idea Whose Time Has Come and Gone},
  year   = {2000}, volume = {29}, pages = {2--11},
}
@inproceedings{graefe00,
  author = {Goetz Graefe},
  title  = {Dynamic Query Evaluation Plans: Some Course Corrections?},
  year   = {2000}, volume = {23}, pages = {3--6},
}
)bib";

}  // namespace

int main(int argc, char** argv) {
  using namespace authidx;

  std::string bib_text = kBuiltinBib;
  if (argc > 1) {
    Result<std::string> file = Env::Default()->ReadFileToString(argv[1]);
    if (!file.ok()) {
      std::fprintf(stderr, "cannot read %s: %s\n", argv[1],
                   file.status().ToString().c_str());
      return 1;
    }
    bib_text = std::move(file).value();
  }

  Result<std::vector<Entry>> entries = ParseBibTexToEntries(bib_text);
  if (!entries.ok()) {
    std::fprintf(stderr, "bibtex import failed: %s\n",
                 entries.status().ToString().c_str());
    return 1;
  }
  auto catalog = core::AuthorIndex::Create();
  Status ingest = catalog->AddAll(std::move(entries).value());
  if (!ingest.ok()) {
    std::fprintf(stderr, "ingest failed: %s\n", ingest.ToString().c_str());
    return 1;
  }
  std::printf("imported %zu index entries (%zu distinct authors)\n\n",
              catalog->entry_count(), catalog->group_count());

  format::TypesetOptions topt;
  topt.heading = "AUTHOR INDEX";
  topt.citation_col = "VOL:PAGE (YEAR)";
  topt.first_page_number = 1;
  auto pages = format::TypesetAuthorIndex(*catalog, topt);
  std::printf("%s\n", pages.front().text.c_str());

  std::printf("--- KWIC (permuted title) index ---\n");
  format::KwicOptions kopt;
  std::printf("%s", format::KwicIndexToString(*catalog, kopt).c_str());
  return 0;
}
