// Fuzzy and phonetic author lookup over a large synthetic catalog:
// misspelled surnames still find the right person, with Jaro-Winkler
// ranking of the candidates.
//
//   ./fuzzy_author_search [name...]

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "authidx/core/author_index.h"
#include "authidx/text/distance.h"
#include "authidx/text/normalize.h"
#include "authidx/text/phonetic.h"
#include "authidx/workload/corpus.h"

int main(int argc, char** argv) {
  using namespace authidx;

  workload::CorpusOptions options;
  options.entries = 50000;
  options.authors = 4000;
  auto catalog = core::AuthorIndex::Create();
  Status ingest = catalog->AddAll(workload::GenerateCorpus(options));
  if (!ingest.ok()) {
    std::fprintf(stderr, "ingest failed: %s\n", ingest.ToString().c_str());
    return 1;
  }
  std::printf("catalog: %zu entries, %zu authors\n\n",
              catalog->entry_count(), catalog->group_count());

  std::vector<std::string> probes;
  for (int i = 1; i < argc; ++i) {
    probes.push_back(argv[i]);
  }
  if (probes.empty()) {
    // Deliberate misspellings of pool surnames.
    probes = {"mcginlay", "jonson", "epstien", "fizgerald", "neeley"};
  }

  for (const std::string& probe : probes) {
    std::string folded = text::NormalizeForIndex(probe);
    std::printf("probe '%s'  (metaphone %s, soundex %s)\n", probe.c_str(),
                text::Metaphone(probe).c_str(),
                text::Soundex(probe).c_str());
    Result<query::QueryResult> result =
        catalog->Search("author~" + probe + " limit:10000");
    if (!result.ok()) {
      std::fprintf(stderr, "  query failed: %s\n",
                   result.status().ToString().c_str());
      return 1;
    }
    // Collapse hits to distinct authors ranked by Jaro-Winkler.
    std::vector<std::pair<double, std::string>> authors;
    std::string last;
    for (const query::Hit& hit : result->hits) {
      const Entry* entry = catalog->GetEntry(hit.id);
      std::string surname = text::NormalizeForIndex(entry->author.surname);
      std::string display = entry->author.GroupKey();
      if (display == last) {
        continue;
      }
      last = display;
      authors.emplace_back(text::JaroWinkler(surname, folded), display);
    }
    std::sort(authors.begin(), authors.end(),
              [](const auto& a, const auto& b) { return a.first > b.first; });
    authors.erase(std::unique(authors.begin(), authors.end(),
                              [](const auto& a, const auto& b) {
                                return a.second == b.second;
                              }),
                  authors.end());
    if (authors.empty()) {
      std::printf("  no candidates within edit distance 2\n");
    }
    for (size_t i = 0; i < authors.size() && i < 5; ++i) {
      std::printf("  %.3f  %s\n", authors[i].first,
                  authors[i].second.c_str());
    }
    std::printf("\n");
  }
  return 0;
}
