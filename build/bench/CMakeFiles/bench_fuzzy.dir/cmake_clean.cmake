file(REMOVE_RECURSE
  "CMakeFiles/bench_fuzzy.dir/bench_fuzzy.cc.o"
  "CMakeFiles/bench_fuzzy.dir/bench_fuzzy.cc.o.d"
  "bench_fuzzy"
  "bench_fuzzy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fuzzy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
