# Empty dependencies file for bench_fuzzy.
# This may be replaced when dependencies are built.
