file(REMOVE_RECURSE
  "CMakeFiles/bench_prefix_scan.dir/bench_prefix_scan.cc.o"
  "CMakeFiles/bench_prefix_scan.dir/bench_prefix_scan.cc.o.d"
  "bench_prefix_scan"
  "bench_prefix_scan.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_prefix_scan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
