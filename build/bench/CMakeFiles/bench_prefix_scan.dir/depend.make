# Empty dependencies file for bench_prefix_scan.
# This may be replaced when dependencies are built.
