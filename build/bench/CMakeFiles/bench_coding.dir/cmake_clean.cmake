file(REMOVE_RECURSE
  "CMakeFiles/bench_coding.dir/bench_coding.cc.o"
  "CMakeFiles/bench_coding.dir/bench_coding.cc.o.d"
  "bench_coding"
  "bench_coding.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_coding.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
