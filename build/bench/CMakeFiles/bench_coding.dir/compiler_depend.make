# Empty compiler generated dependencies file for bench_coding.
# This may be replaced when dependencies are built.
