file(REMOVE_RECURSE
  "CMakeFiles/bench_collation.dir/bench_collation.cc.o"
  "CMakeFiles/bench_collation.dir/bench_collation.cc.o.d"
  "bench_collation"
  "bench_collation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_collation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
