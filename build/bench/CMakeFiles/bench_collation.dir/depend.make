# Empty dependencies file for bench_collation.
# This may be replaced when dependencies are built.
