file(REMOVE_RECURSE
  "CMakeFiles/bench_inverted.dir/bench_inverted.cc.o"
  "CMakeFiles/bench_inverted.dir/bench_inverted.cc.o.d"
  "bench_inverted"
  "bench_inverted.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_inverted.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
