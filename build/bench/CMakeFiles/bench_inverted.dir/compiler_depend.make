# Empty compiler generated dependencies file for bench_inverted.
# This may be replaced when dependencies are built.
