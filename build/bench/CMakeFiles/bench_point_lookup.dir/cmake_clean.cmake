file(REMOVE_RECURSE
  "CMakeFiles/bench_point_lookup.dir/bench_point_lookup.cc.o"
  "CMakeFiles/bench_point_lookup.dir/bench_point_lookup.cc.o.d"
  "bench_point_lookup"
  "bench_point_lookup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_point_lookup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
