# Empty dependencies file for bench_point_lookup.
# This may be replaced when dependencies are built.
