# Empty compiler generated dependencies file for bench_typeset.
# This may be replaced when dependencies are built.
