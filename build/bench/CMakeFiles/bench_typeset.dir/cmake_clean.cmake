file(REMOVE_RECURSE
  "CMakeFiles/bench_typeset.dir/bench_typeset.cc.o"
  "CMakeFiles/bench_typeset.dir/bench_typeset.cc.o.d"
  "bench_typeset"
  "bench_typeset.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_typeset.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
