# Empty compiler generated dependencies file for authidx_workload.
# This may be replaced when dependencies are built.
