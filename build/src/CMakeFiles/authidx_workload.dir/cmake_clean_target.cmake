file(REMOVE_RECURSE
  "libauthidx_workload.a"
)
