file(REMOVE_RECURSE
  "CMakeFiles/authidx_workload.dir/authidx/workload/corpus.cc.o"
  "CMakeFiles/authidx_workload.dir/authidx/workload/corpus.cc.o.d"
  "CMakeFiles/authidx_workload.dir/authidx/workload/namegen.cc.o"
  "CMakeFiles/authidx_workload.dir/authidx/workload/namegen.cc.o.d"
  "CMakeFiles/authidx_workload.dir/authidx/workload/sample_data.cc.o"
  "CMakeFiles/authidx_workload.dir/authidx/workload/sample_data.cc.o.d"
  "libauthidx_workload.a"
  "libauthidx_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/authidx_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
