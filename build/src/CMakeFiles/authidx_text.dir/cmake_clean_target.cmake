file(REMOVE_RECURSE
  "libauthidx_text.a"
)
