# Empty dependencies file for authidx_text.
# This may be replaced when dependencies are built.
