file(REMOVE_RECURSE
  "CMakeFiles/authidx_text.dir/authidx/text/collate.cc.o"
  "CMakeFiles/authidx_text.dir/authidx/text/collate.cc.o.d"
  "CMakeFiles/authidx_text.dir/authidx/text/distance.cc.o"
  "CMakeFiles/authidx_text.dir/authidx/text/distance.cc.o.d"
  "CMakeFiles/authidx_text.dir/authidx/text/normalize.cc.o"
  "CMakeFiles/authidx_text.dir/authidx/text/normalize.cc.o.d"
  "CMakeFiles/authidx_text.dir/authidx/text/phonetic.cc.o"
  "CMakeFiles/authidx_text.dir/authidx/text/phonetic.cc.o.d"
  "CMakeFiles/authidx_text.dir/authidx/text/stem.cc.o"
  "CMakeFiles/authidx_text.dir/authidx/text/stem.cc.o.d"
  "CMakeFiles/authidx_text.dir/authidx/text/tokenize.cc.o"
  "CMakeFiles/authidx_text.dir/authidx/text/tokenize.cc.o.d"
  "libauthidx_text.a"
  "libauthidx_text.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/authidx_text.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
