
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/authidx/text/collate.cc" "src/CMakeFiles/authidx_text.dir/authidx/text/collate.cc.o" "gcc" "src/CMakeFiles/authidx_text.dir/authidx/text/collate.cc.o.d"
  "/root/repo/src/authidx/text/distance.cc" "src/CMakeFiles/authidx_text.dir/authidx/text/distance.cc.o" "gcc" "src/CMakeFiles/authidx_text.dir/authidx/text/distance.cc.o.d"
  "/root/repo/src/authidx/text/normalize.cc" "src/CMakeFiles/authidx_text.dir/authidx/text/normalize.cc.o" "gcc" "src/CMakeFiles/authidx_text.dir/authidx/text/normalize.cc.o.d"
  "/root/repo/src/authidx/text/phonetic.cc" "src/CMakeFiles/authidx_text.dir/authidx/text/phonetic.cc.o" "gcc" "src/CMakeFiles/authidx_text.dir/authidx/text/phonetic.cc.o.d"
  "/root/repo/src/authidx/text/stem.cc" "src/CMakeFiles/authidx_text.dir/authidx/text/stem.cc.o" "gcc" "src/CMakeFiles/authidx_text.dir/authidx/text/stem.cc.o.d"
  "/root/repo/src/authidx/text/tokenize.cc" "src/CMakeFiles/authidx_text.dir/authidx/text/tokenize.cc.o" "gcc" "src/CMakeFiles/authidx_text.dir/authidx/text/tokenize.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/authidx_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
