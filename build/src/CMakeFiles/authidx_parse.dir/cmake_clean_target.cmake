file(REMOVE_RECURSE
  "libauthidx_parse.a"
)
