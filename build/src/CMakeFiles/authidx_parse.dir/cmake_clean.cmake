file(REMOVE_RECURSE
  "CMakeFiles/authidx_parse.dir/authidx/parse/bibtex.cc.o"
  "CMakeFiles/authidx_parse.dir/authidx/parse/bibtex.cc.o.d"
  "CMakeFiles/authidx_parse.dir/authidx/parse/citation.cc.o"
  "CMakeFiles/authidx_parse.dir/authidx/parse/citation.cc.o.d"
  "CMakeFiles/authidx_parse.dir/authidx/parse/name.cc.o"
  "CMakeFiles/authidx_parse.dir/authidx/parse/name.cc.o.d"
  "CMakeFiles/authidx_parse.dir/authidx/parse/tsv.cc.o"
  "CMakeFiles/authidx_parse.dir/authidx/parse/tsv.cc.o.d"
  "libauthidx_parse.a"
  "libauthidx_parse.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/authidx_parse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
