# Empty dependencies file for authidx_parse.
# This may be replaced when dependencies are built.
