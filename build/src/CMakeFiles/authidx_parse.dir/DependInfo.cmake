
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/authidx/parse/bibtex.cc" "src/CMakeFiles/authidx_parse.dir/authidx/parse/bibtex.cc.o" "gcc" "src/CMakeFiles/authidx_parse.dir/authidx/parse/bibtex.cc.o.d"
  "/root/repo/src/authidx/parse/citation.cc" "src/CMakeFiles/authidx_parse.dir/authidx/parse/citation.cc.o" "gcc" "src/CMakeFiles/authidx_parse.dir/authidx/parse/citation.cc.o.d"
  "/root/repo/src/authidx/parse/name.cc" "src/CMakeFiles/authidx_parse.dir/authidx/parse/name.cc.o" "gcc" "src/CMakeFiles/authidx_parse.dir/authidx/parse/name.cc.o.d"
  "/root/repo/src/authidx/parse/tsv.cc" "src/CMakeFiles/authidx_parse.dir/authidx/parse/tsv.cc.o" "gcc" "src/CMakeFiles/authidx_parse.dir/authidx/parse/tsv.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/authidx_model.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/authidx_text.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/authidx_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
