file(REMOVE_RECURSE
  "libauthidx_core.a"
)
