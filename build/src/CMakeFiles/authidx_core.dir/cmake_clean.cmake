file(REMOVE_RECURSE
  "CMakeFiles/authidx_core.dir/authidx/core/author_index.cc.o"
  "CMakeFiles/authidx_core.dir/authidx/core/author_index.cc.o.d"
  "CMakeFiles/authidx_core.dir/authidx/core/stats.cc.o"
  "CMakeFiles/authidx_core.dir/authidx/core/stats.cc.o.d"
  "libauthidx_core.a"
  "libauthidx_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/authidx_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
