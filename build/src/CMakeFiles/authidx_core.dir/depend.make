# Empty dependencies file for authidx_core.
# This may be replaced when dependencies are built.
