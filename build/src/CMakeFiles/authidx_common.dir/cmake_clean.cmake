file(REMOVE_RECURSE
  "CMakeFiles/authidx_common.dir/authidx/common/arena.cc.o"
  "CMakeFiles/authidx_common.dir/authidx/common/arena.cc.o.d"
  "CMakeFiles/authidx_common.dir/authidx/common/coding.cc.o"
  "CMakeFiles/authidx_common.dir/authidx/common/coding.cc.o.d"
  "CMakeFiles/authidx_common.dir/authidx/common/compress.cc.o"
  "CMakeFiles/authidx_common.dir/authidx/common/compress.cc.o.d"
  "CMakeFiles/authidx_common.dir/authidx/common/crc32c.cc.o"
  "CMakeFiles/authidx_common.dir/authidx/common/crc32c.cc.o.d"
  "CMakeFiles/authidx_common.dir/authidx/common/env.cc.o"
  "CMakeFiles/authidx_common.dir/authidx/common/env.cc.o.d"
  "CMakeFiles/authidx_common.dir/authidx/common/hash.cc.o"
  "CMakeFiles/authidx_common.dir/authidx/common/hash.cc.o.d"
  "CMakeFiles/authidx_common.dir/authidx/common/random.cc.o"
  "CMakeFiles/authidx_common.dir/authidx/common/random.cc.o.d"
  "CMakeFiles/authidx_common.dir/authidx/common/status.cc.o"
  "CMakeFiles/authidx_common.dir/authidx/common/status.cc.o.d"
  "CMakeFiles/authidx_common.dir/authidx/common/strings.cc.o"
  "CMakeFiles/authidx_common.dir/authidx/common/strings.cc.o.d"
  "libauthidx_common.a"
  "libauthidx_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/authidx_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
