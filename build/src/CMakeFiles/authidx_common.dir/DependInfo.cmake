
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/authidx/common/arena.cc" "src/CMakeFiles/authidx_common.dir/authidx/common/arena.cc.o" "gcc" "src/CMakeFiles/authidx_common.dir/authidx/common/arena.cc.o.d"
  "/root/repo/src/authidx/common/coding.cc" "src/CMakeFiles/authidx_common.dir/authidx/common/coding.cc.o" "gcc" "src/CMakeFiles/authidx_common.dir/authidx/common/coding.cc.o.d"
  "/root/repo/src/authidx/common/compress.cc" "src/CMakeFiles/authidx_common.dir/authidx/common/compress.cc.o" "gcc" "src/CMakeFiles/authidx_common.dir/authidx/common/compress.cc.o.d"
  "/root/repo/src/authidx/common/crc32c.cc" "src/CMakeFiles/authidx_common.dir/authidx/common/crc32c.cc.o" "gcc" "src/CMakeFiles/authidx_common.dir/authidx/common/crc32c.cc.o.d"
  "/root/repo/src/authidx/common/env.cc" "src/CMakeFiles/authidx_common.dir/authidx/common/env.cc.o" "gcc" "src/CMakeFiles/authidx_common.dir/authidx/common/env.cc.o.d"
  "/root/repo/src/authidx/common/hash.cc" "src/CMakeFiles/authidx_common.dir/authidx/common/hash.cc.o" "gcc" "src/CMakeFiles/authidx_common.dir/authidx/common/hash.cc.o.d"
  "/root/repo/src/authidx/common/random.cc" "src/CMakeFiles/authidx_common.dir/authidx/common/random.cc.o" "gcc" "src/CMakeFiles/authidx_common.dir/authidx/common/random.cc.o.d"
  "/root/repo/src/authidx/common/status.cc" "src/CMakeFiles/authidx_common.dir/authidx/common/status.cc.o" "gcc" "src/CMakeFiles/authidx_common.dir/authidx/common/status.cc.o.d"
  "/root/repo/src/authidx/common/strings.cc" "src/CMakeFiles/authidx_common.dir/authidx/common/strings.cc.o" "gcc" "src/CMakeFiles/authidx_common.dir/authidx/common/strings.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
