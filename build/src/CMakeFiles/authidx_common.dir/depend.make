# Empty dependencies file for authidx_common.
# This may be replaced when dependencies are built.
