file(REMOVE_RECURSE
  "libauthidx_common.a"
)
