file(REMOVE_RECURSE
  "CMakeFiles/authidx_format.dir/authidx/format/export.cc.o"
  "CMakeFiles/authidx_format.dir/authidx/format/export.cc.o.d"
  "CMakeFiles/authidx_format.dir/authidx/format/kwic.cc.o"
  "CMakeFiles/authidx_format.dir/authidx/format/kwic.cc.o.d"
  "CMakeFiles/authidx_format.dir/authidx/format/subject_index.cc.o"
  "CMakeFiles/authidx_format.dir/authidx/format/subject_index.cc.o.d"
  "CMakeFiles/authidx_format.dir/authidx/format/title_index.cc.o"
  "CMakeFiles/authidx_format.dir/authidx/format/title_index.cc.o.d"
  "CMakeFiles/authidx_format.dir/authidx/format/typeset.cc.o"
  "CMakeFiles/authidx_format.dir/authidx/format/typeset.cc.o.d"
  "libauthidx_format.a"
  "libauthidx_format.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/authidx_format.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
