# Empty dependencies file for authidx_format.
# This may be replaced when dependencies are built.
