file(REMOVE_RECURSE
  "libauthidx_format.a"
)
