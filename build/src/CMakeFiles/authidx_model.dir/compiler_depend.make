# Empty compiler generated dependencies file for authidx_model.
# This may be replaced when dependencies are built.
