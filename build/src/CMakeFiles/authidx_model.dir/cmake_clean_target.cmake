file(REMOVE_RECURSE
  "libauthidx_model.a"
)
