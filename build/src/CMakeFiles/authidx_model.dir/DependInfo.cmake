
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/authidx/model/record.cc" "src/CMakeFiles/authidx_model.dir/authidx/model/record.cc.o" "gcc" "src/CMakeFiles/authidx_model.dir/authidx/model/record.cc.o.d"
  "/root/repo/src/authidx/model/serde.cc" "src/CMakeFiles/authidx_model.dir/authidx/model/serde.cc.o" "gcc" "src/CMakeFiles/authidx_model.dir/authidx/model/serde.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/authidx_common.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/authidx_text.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
