file(REMOVE_RECURSE
  "CMakeFiles/authidx_model.dir/authidx/model/record.cc.o"
  "CMakeFiles/authidx_model.dir/authidx/model/record.cc.o.d"
  "CMakeFiles/authidx_model.dir/authidx/model/serde.cc.o"
  "CMakeFiles/authidx_model.dir/authidx/model/serde.cc.o.d"
  "libauthidx_model.a"
  "libauthidx_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/authidx_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
