
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/authidx/query/ast.cc" "src/CMakeFiles/authidx_query.dir/authidx/query/ast.cc.o" "gcc" "src/CMakeFiles/authidx_query.dir/authidx/query/ast.cc.o.d"
  "/root/repo/src/authidx/query/executor.cc" "src/CMakeFiles/authidx_query.dir/authidx/query/executor.cc.o" "gcc" "src/CMakeFiles/authidx_query.dir/authidx/query/executor.cc.o.d"
  "/root/repo/src/authidx/query/parser.cc" "src/CMakeFiles/authidx_query.dir/authidx/query/parser.cc.o" "gcc" "src/CMakeFiles/authidx_query.dir/authidx/query/parser.cc.o.d"
  "/root/repo/src/authidx/query/planner.cc" "src/CMakeFiles/authidx_query.dir/authidx/query/planner.cc.o" "gcc" "src/CMakeFiles/authidx_query.dir/authidx/query/planner.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/authidx_index.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/authidx_model.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/authidx_text.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/authidx_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
