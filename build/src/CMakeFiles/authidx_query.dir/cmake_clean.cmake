file(REMOVE_RECURSE
  "CMakeFiles/authidx_query.dir/authidx/query/ast.cc.o"
  "CMakeFiles/authidx_query.dir/authidx/query/ast.cc.o.d"
  "CMakeFiles/authidx_query.dir/authidx/query/executor.cc.o"
  "CMakeFiles/authidx_query.dir/authidx/query/executor.cc.o.d"
  "CMakeFiles/authidx_query.dir/authidx/query/parser.cc.o"
  "CMakeFiles/authidx_query.dir/authidx/query/parser.cc.o.d"
  "CMakeFiles/authidx_query.dir/authidx/query/planner.cc.o"
  "CMakeFiles/authidx_query.dir/authidx/query/planner.cc.o.d"
  "libauthidx_query.a"
  "libauthidx_query.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/authidx_query.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
