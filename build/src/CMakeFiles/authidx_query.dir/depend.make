# Empty dependencies file for authidx_query.
# This may be replaced when dependencies are built.
