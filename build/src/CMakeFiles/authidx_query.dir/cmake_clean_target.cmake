file(REMOVE_RECURSE
  "libauthidx_query.a"
)
