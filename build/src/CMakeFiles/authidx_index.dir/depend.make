# Empty dependencies file for authidx_index.
# This may be replaced when dependencies are built.
