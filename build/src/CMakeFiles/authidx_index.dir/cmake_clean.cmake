file(REMOVE_RECURSE
  "CMakeFiles/authidx_index.dir/authidx/index/bloom.cc.o"
  "CMakeFiles/authidx_index.dir/authidx/index/bloom.cc.o.d"
  "CMakeFiles/authidx_index.dir/authidx/index/btree.cc.o"
  "CMakeFiles/authidx_index.dir/authidx/index/btree.cc.o.d"
  "CMakeFiles/authidx_index.dir/authidx/index/inverted.cc.o"
  "CMakeFiles/authidx_index.dir/authidx/index/inverted.cc.o.d"
  "CMakeFiles/authidx_index.dir/authidx/index/postings.cc.o"
  "CMakeFiles/authidx_index.dir/authidx/index/postings.cc.o.d"
  "CMakeFiles/authidx_index.dir/authidx/index/ranker.cc.o"
  "CMakeFiles/authidx_index.dir/authidx/index/ranker.cc.o.d"
  "CMakeFiles/authidx_index.dir/authidx/index/trie.cc.o"
  "CMakeFiles/authidx_index.dir/authidx/index/trie.cc.o.d"
  "libauthidx_index.a"
  "libauthidx_index.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/authidx_index.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
