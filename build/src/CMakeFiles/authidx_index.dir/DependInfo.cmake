
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/authidx/index/bloom.cc" "src/CMakeFiles/authidx_index.dir/authidx/index/bloom.cc.o" "gcc" "src/CMakeFiles/authidx_index.dir/authidx/index/bloom.cc.o.d"
  "/root/repo/src/authidx/index/btree.cc" "src/CMakeFiles/authidx_index.dir/authidx/index/btree.cc.o" "gcc" "src/CMakeFiles/authidx_index.dir/authidx/index/btree.cc.o.d"
  "/root/repo/src/authidx/index/inverted.cc" "src/CMakeFiles/authidx_index.dir/authidx/index/inverted.cc.o" "gcc" "src/CMakeFiles/authidx_index.dir/authidx/index/inverted.cc.o.d"
  "/root/repo/src/authidx/index/postings.cc" "src/CMakeFiles/authidx_index.dir/authidx/index/postings.cc.o" "gcc" "src/CMakeFiles/authidx_index.dir/authidx/index/postings.cc.o.d"
  "/root/repo/src/authidx/index/ranker.cc" "src/CMakeFiles/authidx_index.dir/authidx/index/ranker.cc.o" "gcc" "src/CMakeFiles/authidx_index.dir/authidx/index/ranker.cc.o.d"
  "/root/repo/src/authidx/index/trie.cc" "src/CMakeFiles/authidx_index.dir/authidx/index/trie.cc.o" "gcc" "src/CMakeFiles/authidx_index.dir/authidx/index/trie.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/authidx_common.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/authidx_text.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
