file(REMOVE_RECURSE
  "libauthidx_index.a"
)
