file(REMOVE_RECURSE
  "CMakeFiles/authidx_storage.dir/authidx/storage/block.cc.o"
  "CMakeFiles/authidx_storage.dir/authidx/storage/block.cc.o.d"
  "CMakeFiles/authidx_storage.dir/authidx/storage/cache.cc.o"
  "CMakeFiles/authidx_storage.dir/authidx/storage/cache.cc.o.d"
  "CMakeFiles/authidx_storage.dir/authidx/storage/engine.cc.o"
  "CMakeFiles/authidx_storage.dir/authidx/storage/engine.cc.o.d"
  "CMakeFiles/authidx_storage.dir/authidx/storage/iterator.cc.o"
  "CMakeFiles/authidx_storage.dir/authidx/storage/iterator.cc.o.d"
  "CMakeFiles/authidx_storage.dir/authidx/storage/manifest.cc.o"
  "CMakeFiles/authidx_storage.dir/authidx/storage/manifest.cc.o.d"
  "CMakeFiles/authidx_storage.dir/authidx/storage/memtable.cc.o"
  "CMakeFiles/authidx_storage.dir/authidx/storage/memtable.cc.o.d"
  "CMakeFiles/authidx_storage.dir/authidx/storage/table.cc.o"
  "CMakeFiles/authidx_storage.dir/authidx/storage/table.cc.o.d"
  "CMakeFiles/authidx_storage.dir/authidx/storage/wal.cc.o"
  "CMakeFiles/authidx_storage.dir/authidx/storage/wal.cc.o.d"
  "CMakeFiles/authidx_storage.dir/authidx/storage/write_batch.cc.o"
  "CMakeFiles/authidx_storage.dir/authidx/storage/write_batch.cc.o.d"
  "libauthidx_storage.a"
  "libauthidx_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/authidx_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
