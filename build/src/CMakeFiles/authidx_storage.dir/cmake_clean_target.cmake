file(REMOVE_RECURSE
  "libauthidx_storage.a"
)
