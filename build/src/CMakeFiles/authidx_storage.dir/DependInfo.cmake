
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/authidx/storage/block.cc" "src/CMakeFiles/authidx_storage.dir/authidx/storage/block.cc.o" "gcc" "src/CMakeFiles/authidx_storage.dir/authidx/storage/block.cc.o.d"
  "/root/repo/src/authidx/storage/cache.cc" "src/CMakeFiles/authidx_storage.dir/authidx/storage/cache.cc.o" "gcc" "src/CMakeFiles/authidx_storage.dir/authidx/storage/cache.cc.o.d"
  "/root/repo/src/authidx/storage/engine.cc" "src/CMakeFiles/authidx_storage.dir/authidx/storage/engine.cc.o" "gcc" "src/CMakeFiles/authidx_storage.dir/authidx/storage/engine.cc.o.d"
  "/root/repo/src/authidx/storage/iterator.cc" "src/CMakeFiles/authidx_storage.dir/authidx/storage/iterator.cc.o" "gcc" "src/CMakeFiles/authidx_storage.dir/authidx/storage/iterator.cc.o.d"
  "/root/repo/src/authidx/storage/manifest.cc" "src/CMakeFiles/authidx_storage.dir/authidx/storage/manifest.cc.o" "gcc" "src/CMakeFiles/authidx_storage.dir/authidx/storage/manifest.cc.o.d"
  "/root/repo/src/authidx/storage/memtable.cc" "src/CMakeFiles/authidx_storage.dir/authidx/storage/memtable.cc.o" "gcc" "src/CMakeFiles/authidx_storage.dir/authidx/storage/memtable.cc.o.d"
  "/root/repo/src/authidx/storage/table.cc" "src/CMakeFiles/authidx_storage.dir/authidx/storage/table.cc.o" "gcc" "src/CMakeFiles/authidx_storage.dir/authidx/storage/table.cc.o.d"
  "/root/repo/src/authidx/storage/wal.cc" "src/CMakeFiles/authidx_storage.dir/authidx/storage/wal.cc.o" "gcc" "src/CMakeFiles/authidx_storage.dir/authidx/storage/wal.cc.o.d"
  "/root/repo/src/authidx/storage/write_batch.cc" "src/CMakeFiles/authidx_storage.dir/authidx/storage/write_batch.cc.o" "gcc" "src/CMakeFiles/authidx_storage.dir/authidx/storage/write_batch.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/authidx_common.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/authidx_index.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/authidx_text.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
