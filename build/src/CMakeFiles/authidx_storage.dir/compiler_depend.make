# Empty compiler generated dependencies file for authidx_storage.
# This may be replaced when dependencies are built.
