file(REMOVE_RECURSE
  "CMakeFiles/fuzzy_author_search.dir/fuzzy_author_search.cc.o"
  "CMakeFiles/fuzzy_author_search.dir/fuzzy_author_search.cc.o.d"
  "fuzzy_author_search"
  "fuzzy_author_search.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fuzzy_author_search.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
