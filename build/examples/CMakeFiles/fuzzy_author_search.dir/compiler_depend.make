# Empty compiler generated dependencies file for fuzzy_author_search.
# This may be replaced when dependencies are built.
