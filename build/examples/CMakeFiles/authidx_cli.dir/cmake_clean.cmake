file(REMOVE_RECURSE
  "CMakeFiles/authidx_cli.dir/authidx_cli.cc.o"
  "CMakeFiles/authidx_cli.dir/authidx_cli.cc.o.d"
  "authidx_cli"
  "authidx_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/authidx_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
