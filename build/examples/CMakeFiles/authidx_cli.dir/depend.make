# Empty dependencies file for authidx_cli.
# This may be replaced when dependencies are built.
