file(REMOVE_RECURSE
  "CMakeFiles/bibtex_import.dir/bibtex_import.cc.o"
  "CMakeFiles/bibtex_import.dir/bibtex_import.cc.o.d"
  "bibtex_import"
  "bibtex_import.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bibtex_import.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
