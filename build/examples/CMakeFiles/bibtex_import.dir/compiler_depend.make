# Empty compiler generated dependencies file for bibtex_import.
# This may be replaced when dependencies are built.
