file(REMOVE_RECURSE
  "CMakeFiles/law_review_index.dir/law_review_index.cc.o"
  "CMakeFiles/law_review_index.dir/law_review_index.cc.o.d"
  "law_review_index"
  "law_review_index.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/law_review_index.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
