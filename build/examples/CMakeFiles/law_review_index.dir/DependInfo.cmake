
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/law_review_index.cc" "examples/CMakeFiles/law_review_index.dir/law_review_index.cc.o" "gcc" "examples/CMakeFiles/law_review_index.dir/law_review_index.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/authidx_format.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/authidx_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/authidx_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/authidx_query.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/authidx_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/authidx_index.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/authidx_parse.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/authidx_model.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/authidx_text.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/authidx_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
