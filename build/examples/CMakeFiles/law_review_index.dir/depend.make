# Empty dependencies file for law_review_index.
# This may be replaced when dependencies are built.
