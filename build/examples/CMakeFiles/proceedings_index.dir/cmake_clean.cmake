file(REMOVE_RECURSE
  "CMakeFiles/proceedings_index.dir/proceedings_index.cc.o"
  "CMakeFiles/proceedings_index.dir/proceedings_index.cc.o.d"
  "proceedings_index"
  "proceedings_index.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/proceedings_index.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
