# Empty dependencies file for proceedings_index.
# This may be replaced when dependencies are built.
