# Empty dependencies file for record_serde_test.
# This may be replaced when dependencies are built.
