file(REMOVE_RECURSE
  "CMakeFiles/record_serde_test.dir/record_serde_test.cc.o"
  "CMakeFiles/record_serde_test.dir/record_serde_test.cc.o.d"
  "record_serde_test"
  "record_serde_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/record_serde_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
