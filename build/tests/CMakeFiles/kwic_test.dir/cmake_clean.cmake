file(REMOVE_RECURSE
  "CMakeFiles/kwic_test.dir/kwic_test.cc.o"
  "CMakeFiles/kwic_test.dir/kwic_test.cc.o.d"
  "kwic_test"
  "kwic_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kwic_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
