# Empty dependencies file for kwic_test.
# This may be replaced when dependencies are built.
