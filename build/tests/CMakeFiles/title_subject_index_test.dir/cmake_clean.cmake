file(REMOVE_RECURSE
  "CMakeFiles/title_subject_index_test.dir/title_subject_index_test.cc.o"
  "CMakeFiles/title_subject_index_test.dir/title_subject_index_test.cc.o.d"
  "title_subject_index_test"
  "title_subject_index_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/title_subject_index_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
