# Empty compiler generated dependencies file for title_subject_index_test.
# This may be replaced when dependencies are built.
