# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for title_subject_index_test.
