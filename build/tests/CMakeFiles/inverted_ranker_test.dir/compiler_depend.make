# Empty compiler generated dependencies file for inverted_ranker_test.
# This may be replaced when dependencies are built.
