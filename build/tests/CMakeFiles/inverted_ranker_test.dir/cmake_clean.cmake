file(REMOVE_RECURSE
  "CMakeFiles/inverted_ranker_test.dir/inverted_ranker_test.cc.o"
  "CMakeFiles/inverted_ranker_test.dir/inverted_ranker_test.cc.o.d"
  "inverted_ranker_test"
  "inverted_ranker_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/inverted_ranker_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
