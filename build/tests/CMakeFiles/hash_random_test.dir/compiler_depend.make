# Empty compiler generated dependencies file for hash_random_test.
# This may be replaced when dependencies are built.
