file(REMOVE_RECURSE
  "CMakeFiles/hash_random_test.dir/hash_random_test.cc.o"
  "CMakeFiles/hash_random_test.dir/hash_random_test.cc.o.d"
  "hash_random_test"
  "hash_random_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hash_random_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
