file(REMOVE_RECURSE
  "CMakeFiles/bibtex_test.dir/bibtex_test.cc.o"
  "CMakeFiles/bibtex_test.dir/bibtex_test.cc.o.d"
  "bibtex_test"
  "bibtex_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bibtex_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
