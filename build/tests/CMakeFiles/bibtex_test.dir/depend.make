# Empty dependencies file for bibtex_test.
# This may be replaced when dependencies are built.
