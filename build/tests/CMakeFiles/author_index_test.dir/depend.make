# Empty dependencies file for author_index_test.
# This may be replaced when dependencies are built.
