file(REMOVE_RECURSE
  "CMakeFiles/author_index_test.dir/author_index_test.cc.o"
  "CMakeFiles/author_index_test.dir/author_index_test.cc.o.d"
  "author_index_test"
  "author_index_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/author_index_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
