# Empty compiler generated dependencies file for typeset_test.
# This may be replaced when dependencies are built.
