file(REMOVE_RECURSE
  "CMakeFiles/typeset_test.dir/typeset_test.cc.o"
  "CMakeFiles/typeset_test.dir/typeset_test.cc.o.d"
  "typeset_test"
  "typeset_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/typeset_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
