# Empty compiler generated dependencies file for collate_test.
# This may be replaced when dependencies are built.
