file(REMOVE_RECURSE
  "CMakeFiles/collate_test.dir/collate_test.cc.o"
  "CMakeFiles/collate_test.dir/collate_test.cc.o.d"
  "collate_test"
  "collate_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/collate_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
