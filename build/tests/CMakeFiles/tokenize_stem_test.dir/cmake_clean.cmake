file(REMOVE_RECURSE
  "CMakeFiles/tokenize_stem_test.dir/tokenize_stem_test.cc.o"
  "CMakeFiles/tokenize_stem_test.dir/tokenize_stem_test.cc.o.d"
  "tokenize_stem_test"
  "tokenize_stem_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tokenize_stem_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
