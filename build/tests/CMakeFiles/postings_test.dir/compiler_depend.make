# Empty compiler generated dependencies file for postings_test.
# This may be replaced when dependencies are built.
