file(REMOVE_RECURSE
  "CMakeFiles/postings_test.dir/postings_test.cc.o"
  "CMakeFiles/postings_test.dir/postings_test.cc.o.d"
  "postings_test"
  "postings_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/postings_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
